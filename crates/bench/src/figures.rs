//! One regeneration function per figure/table.
//!
//! Parameter values mirror the paper's captions: N = 4096, d = 4, J = 0,
//! L = N/4, alpha = 20% (p_high = 20%, p_low = 2%, p_source = 1%),
//! send interval 100 ms, 1027-byte ENC packets, k = 10, numNACK = 20 —
//! unless the figure sweeps that parameter.

use grouprekey::experiment::{
    encryption_cost_batch, encryption_cost_individual, run_experiment, workload_stats,
    ExperimentParams, ExperimentRun,
};
use netsim::NetworkConfig;
use rekeymsg::Layout;
use rekeyproto::ServerConfig;

use crate::{header, mean, Mode};

const ALPHAS: [f64; 4] = [0.0, 0.2, 0.4, 1.0];

/// The wire format's 8-bit block ID caps a message at 256 blocks. At
/// k = 1 and N = 16384 the rekey message (~430 ENC packets) cannot be
/// addressed — a real limit of the paper's packet format that the
/// experiment honours by skipping the combination.
fn wire_feasible(k: usize, n: u32) -> bool {
    !(k == 1 && n > 8192)
}

fn params_for(
    n: u32,
    alpha: f64,
    proto: ServerConfig,
    messages: usize,
    seed: u64,
) -> ExperimentParams {
    ExperimentParams {
        protocol: proto,
        net: NetworkConfig {
            alpha,
            ..NetworkConfig::default()
        },
        messages,
        seed,
        ..ExperimentParams::default()
    }
    .with_n(n)
}

/// Figure 6 (middle): average # ENC packets as a function of J and L
/// (N = 4096); (right): as a function of N for three (J, L) mixes.
pub fn fig06(mode: Mode) {
    header(
        "Figure 6 (middle)",
        "avg # ENC packets vs (J, L), N = 4096, d = 4",
    );
    let steps = [0usize, 512, 1024, 2048, 3072, 4096];
    print!("{:>6}", "J\\L");
    for &l in &steps {
        print!("{l:>9}");
    }
    println!();
    for &j in &steps {
        print!("{j:>6}");
        for &l in &steps {
            let p = workload_stats(
                4096,
                4,
                j,
                l,
                mode.runs,
                600 + j as u64 * 31 + l as u64,
                &Layout::DEFAULT,
            );
            print!("{:>9.1}", p.enc_packets);
        }
        println!();
    }

    header("Figure 6 (right)", "avg # ENC packets vs N");
    println!(
        "{:>6} {:>16} {:>16} {:>16}",
        "N", "J=0,L=N/4", "J=N/4,L=N/4", "J=N/4,L=0"
    );
    for n in [64u32, 256, 1024, 4096, 16384] {
        let q = (n / 4) as usize;
        let a = workload_stats(n, 4, 0, q, mode.runs, 61, &Layout::DEFAULT);
        let b = workload_stats(n, 4, q, q, mode.runs, 62, &Layout::DEFAULT);
        let c = workload_stats(n, 4, q, 0, mode.runs, 63, &Layout::DEFAULT);
        println!(
            "{:>6} {:>16.1} {:>16.1} {:>16.1}",
            n, a.enc_packets, b.enc_packets, c.enc_packets
        );
    }
}

/// Figure 7: UKA duplication overhead vs (J, L) and vs N.
pub fn fig07(mode: Mode) {
    header(
        "Figure 7 (left)",
        "avg duplication overhead vs (J, L), N = 4096",
    );
    let steps = [0usize, 512, 1024, 2048, 3072, 4096];
    print!("{:>6}", "J\\L");
    for &l in &steps {
        print!("{l:>9}");
    }
    println!();
    for &j in &steps {
        print!("{j:>6}");
        for &l in &steps {
            let p = workload_stats(
                4096,
                4,
                j,
                l,
                mode.runs,
                700 + j as u64 * 17 + l as u64,
                &Layout::DEFAULT,
            );
            print!("{:>9.4}", p.duplication);
        }
        println!();
    }

    header(
        "Figure 7 (right)",
        "avg duplication overhead vs N (bound (log_d N - 1)/46)",
    );
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>10}",
        "N", "J=0,L=N/4", "J=N/4,L=N/4", "J=N/4,L=0", "bound"
    );
    for n in [32u32, 128, 512, 2048, 8192] {
        let q = (n / 4) as usize;
        let a = workload_stats(n, 4, 0, q, mode.runs, 71, &Layout::DEFAULT);
        let b = workload_stats(n, 4, q, q, mode.runs, 72, &Layout::DEFAULT);
        let c = workload_stats(n, 4, q, 0, mode.runs, 73, &Layout::DEFAULT);
        let bound = ((n as f64).log(4.0) - 1.0) / 46.0;
        println!(
            "{:>6} {:>12.4} {:>14.4} {:>12.4} {:>10.4}",
            n, a.duplication, b.duplication, c.duplication, bound
        );
    }
}

/// Figure 8: server bandwidth overhead (left) and relative FEC encoding
/// time (right) vs block size k, at fixed rho = 1.
pub fn fig08(mode: Mode) {
    let ks = [1usize, 2, 5, 10, 20, 30, 40, 50];
    header(
        "Figure 8 (left)",
        "avg server bandwidth overhead vs k (rho = 1, reactive only)",
    );
    print!("{:>4}", "k");
    for a in ALPHAS {
        print!("  alpha={a:<6}");
    }
    println!();
    let mut encode_units = vec![vec![0.0f64; ALPHAS.len()]; ks.len()];
    for (ki, &k) in ks.iter().enumerate() {
        print!("{k:>4}");
        for (ai, &alpha) in ALPHAS.iter().enumerate() {
            let proto = ServerConfig {
                block_size: k,
                initial_rho: 1.0,
                adapt_rho: false,
                ..ServerConfig::default()
            };
            let reports = run_experiment(
                params_for(4096, alpha, proto, mode.messages, 800 + k as u64).multicast_only(),
            );
            let bw = mean(reports.iter().map(|r| r.bandwidth_overhead));
            encode_units[ki][ai] = mean(reports.iter().map(|r| r.encoding_units as f64));
            print!("  {bw:<12.3}");
        }
        println!();
    }

    header(
        "Figure 8 (right)",
        "relative overall FEC encoding time vs k (k units per parity packet)",
    );
    print!("{:>4}", "k");
    for a in ALPHAS {
        print!("  alpha={a:<6}");
    }
    println!();
    for (ki, &k) in ks.iter().enumerate() {
        print!("{k:>4}");
        for units in &encode_units[ki] {
            print!("  {units:<12.0}");
        }
        println!();
    }
}

/// Figure 9: first-round NACKs (left) and rounds-to-all-users (right) vs
/// the proactivity factor.
pub fn fig09(mode: Mode) {
    let rhos = [1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.4, 3.0];
    header(
        "Figure 9 (left)",
        "avg # NACKs after round 1 vs rho (k = 10)",
    );
    print!("{:>5}", "rho");
    for a in ALPHAS {
        print!("  alpha={a:<8}");
    }
    println!();
    let mut rounds = vec![vec![0.0f64; ALPHAS.len()]; rhos.len()];
    for (ri, &rho) in rhos.iter().enumerate() {
        print!("{rho:>5.1}");
        for (ai, &alpha) in ALPHAS.iter().enumerate() {
            let proto = ServerConfig {
                initial_rho: rho,
                adapt_rho: false,
                ..ServerConfig::default()
            };
            let reports = run_experiment(
                params_for(4096, alpha, proto, mode.messages, 900 + ri as u64).multicast_only(),
            );
            let nacks = mean(reports.iter().map(|r| r.nacks_round1 as f64));
            rounds[ri][ai] = mean(reports.iter().map(|r| r.rounds_all_users() as f64));
            print!("  {nacks:<14.2}");
        }
        println!();
    }

    header(
        "Figure 9 (right)",
        "avg # rounds until every user has its encryptions vs rho",
    );
    print!("{:>5}", "rho");
    for a in ALPHAS {
        print!("  alpha={a:<8}");
    }
    println!();
    for (ri, &rho) in rhos.iter().enumerate() {
        print!("{rho:>5.1}");
        for r in &rounds[ri] {
            print!("  {r:<14.2}");
        }
        println!();
    }
}

/// Figure 10: per-round success distribution (left) and bandwidth
/// overhead vs rho (right), alpha = 20%.
pub fn fig10(mode: Mode) {
    header(
        "Figure 10 (left)",
        "fraction of users needing r rounds (alpha = 20%)",
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "rho", "r=1", "r=2", "r=3", "r>=4"
    );
    for rho in [1.0, 1.6, 2.0] {
        let proto = ServerConfig {
            initial_rho: rho,
            adapt_rho: false,
            ..ServerConfig::default()
        };
        let reports =
            run_experiment(params_for(4096, 0.2, proto, mode.messages, 1000).multicast_only());
        let mut dist = [0.0f64; 4];
        let mut total = 0.0;
        for r in &reports {
            for (i, &n) in r.rounds_histogram.iter().enumerate() {
                dist[i.min(3)] += n as f64;
                total += n as f64;
            }
        }
        println!(
            "{:>5.1} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            rho,
            dist[0] / total,
            dist[1] / total,
            dist[2] / total,
            dist[3] / total
        );
    }

    header("Figure 10 (right)", "avg server bandwidth overhead vs rho");
    print!("{:>5}", "rho");
    for a in ALPHAS {
        print!("  alpha={a:<8}");
    }
    println!();
    for rho in [1.0, 1.4, 1.8, 2.2, 2.6, 3.0] {
        print!("{rho:>5.1}");
        for &alpha in &ALPHAS {
            let proto = ServerConfig {
                initial_rho: rho,
                adapt_rho: false,
                ..ServerConfig::default()
            };
            let reports = run_experiment(
                params_for(4096, alpha, proto, mode.messages, 1010).multicast_only(),
            );
            print!(
                "  {:<14.3}",
                mean(reports.iter().map(|r| r.bandwidth_overhead))
            );
        }
        println!();
    }
}

/// Figures 12 and 13: the adaptive rho trajectory and the controlled
/// first-round NACK counts, from initial rho = 1 and 2.
pub fn fig12_13(mode: Mode) {
    for initial in [1.0f64, 2.0] {
        header(
            "Figures 12–13",
            &format!("adaptive rho + NACK control (initial rho = {initial}, numNACK = 20)"),
        );
        print!("{:>4}", "msg");
        for a in ALPHAS {
            print!("  rho(a={a:<4})  nacks");
        }
        println!();
        let mut runs: Vec<ExperimentRun> = ALPHAS
            .iter()
            .map(|&alpha| {
                let proto = ServerConfig {
                    initial_rho: initial,
                    initial_num_nack: 20,
                    adapt_num_nack: false,
                    ..ServerConfig::default()
                };
                ExperimentRun::new(
                    params_for(4096, alpha, proto, mode.trajectory, 1200).multicast_only(),
                )
            })
            .collect();
        for msg in 1..=mode.trajectory {
            print!("{msg:>4}");
            for run in &mut runs {
                let r = run.step();
                print!("  {:>10.2}  {:>5}", r.rho, r.nacks_round1);
            }
            println!();
        }
    }
}

/// Figure 14: NACK control across numNACK targets (alpha = 20%).
pub fn fig14(mode: Mode) {
    let targets = [0usize, 5, 10, 40, 100];
    header(
        "Figure 14",
        "first-round NACKs per message for numNACK in {0,5,10,40,100} (initial rho = 1)",
    );
    print!("{:>4}", "msg");
    for t in targets {
        print!("  target={t:<4}");
    }
    println!();
    let mut runs: Vec<ExperimentRun> = targets
        .iter()
        .map(|&t| {
            let proto = ServerConfig {
                initial_rho: 1.0,
                initial_num_nack: t,
                adapt_num_nack: false,
                ..ServerConfig::default()
            };
            ExperimentRun::new(params_for(4096, 0.2, proto, mode.trajectory, 1400).multicast_only())
        })
        .collect();
    for msg in 1..=mode.trajectory {
        print!("{msg:>4}");
        for run in &mut runs {
            let r = run.step();
            print!("  {:>10}", r.nacks_round1);
        }
        println!();
    }
}

/// Figure 15: NACK fluctuation across block sizes (adaptive rho).
pub fn fig15(mode: Mode) {
    let ks = [1usize, 5, 10, 30, 50];
    header(
        "Figure 15",
        "first-round NACKs per message for k in {1,5,10,30,50} (numNACK = 20)",
    );
    print!("{:>4}", "msg");
    for k in ks {
        print!("  k={k:<8}");
    }
    println!();
    let mut runs: Vec<ExperimentRun> = ks
        .iter()
        .map(|&k| {
            let proto = ServerConfig {
                block_size: k,
                initial_rho: 1.0,
                initial_num_nack: 20,
                adapt_num_nack: false,
                ..ServerConfig::default()
            };
            ExperimentRun::new(params_for(4096, 0.2, proto, mode.trajectory, 1500).multicast_only())
        })
        .collect();
    for msg in 1..=mode.trajectory {
        print!("{msg:>4}");
        for run in &mut runs {
            let r = run.step();
            print!("  {:>10}", r.nacks_round1);
        }
        println!();
    }
}

/// Figure 16: bandwidth overhead vs k under adaptive rho, across alpha
/// (left) and across N (right).
pub fn fig16(mode: Mode) {
    let ks = [1usize, 2, 5, 10, 20, 30, 40, 50];
    header(
        "Figure 16 (left)",
        "avg server bandwidth overhead vs k (adaptive rho, numNACK = 20)",
    );
    print!("{:>4}", "k");
    for a in ALPHAS {
        print!("  alpha={a:<6}");
    }
    println!();
    for &k in &ks {
        print!("{k:>4}");
        for &alpha in &ALPHAS {
            let proto = ServerConfig {
                block_size: k,
                initial_rho: 1.0,
                adapt_num_nack: false,
                ..ServerConfig::default()
            };
            let reports = run_experiment(
                params_for(4096, alpha, proto, mode.messages, 1600 + k as u64).multicast_only(),
            );
            print!(
                "  {:<12.3}",
                mean(reports.iter().map(|r| r.bandwidth_overhead))
            );
        }
        println!();
    }

    header("Figure 16 (right)", "same, across group size (alpha = 20%)");
    print!("{:>4}", "k");
    for n in [1024u32, 4096, 8192, 16384] {
        print!("  N={n:<8}");
    }
    println!();
    for &k in &ks {
        print!("{k:>4}");
        for n in [1024u32, 4096, 8192, 16384] {
            if !wire_feasible(k, n) {
                print!("  {:<10}", "n/a");
                continue;
            }
            let proto = ServerConfig {
                block_size: k,
                initial_rho: 1.0,
                adapt_num_nack: false,
                ..ServerConfig::default()
            };
            let reports = run_experiment(
                params_for(n, 0.2, proto, mode.messages, 1650 + k as u64).multicast_only(),
            );
            print!(
                "  {:<10.3}",
                mean(reports.iter().map(|r| r.bandwidth_overhead))
            );
        }
        println!();
    }
}

/// Figure 17: delivery latency (rounds) vs k under adaptive rho.
pub fn fig17(mode: Mode) {
    let ks = [1usize, 2, 5, 10, 20, 30, 40, 50];
    header(
        "Figure 17",
        "avg rounds until all users done / avg rounds per user vs k (adaptive rho)",
    );
    print!("{:>4}", "k");
    for a in ALPHAS {
        print!("  all(a={a:<4}) user");
    }
    println!();
    for &k in &ks {
        print!("{k:>4}");
        for &alpha in &ALPHAS {
            let proto = ServerConfig {
                block_size: k,
                initial_rho: 1.0,
                adapt_num_nack: false,
                ..ServerConfig::default()
            };
            let reports = run_experiment(
                params_for(4096, alpha, proto, mode.messages, 1700 + k as u64).multicast_only(),
            );
            let all = mean(reports.iter().map(|r| r.rounds_all_users() as f64));
            let per = mean(reports.iter().map(|r| r.avg_user_rounds()));
            print!("  {all:>10.2} {per:>5.3}");
        }
        println!();
    }
}

/// Figure 18: per-user rounds (left) and bandwidth overhead (right) as a
/// function of the numNACK target.
pub fn fig18(mode: Mode) {
    let targets = [0usize, 5, 10, 20, 40, 60, 80, 100];
    header(
        "Figure 18",
        "avg rounds per user / avg server bandwidth overhead vs numNACK",
    );
    print!("{:>8}", "numNACK");
    for a in ALPHAS {
        print!("  rounds(a={a:<4})  bw");
    }
    println!();
    for &t in &targets {
        print!("{t:>8}");
        for &alpha in &ALPHAS {
            let proto = ServerConfig {
                initial_rho: 1.0,
                initial_num_nack: t,
                adapt_num_nack: false,
                ..ServerConfig::default()
            };
            let reports = run_experiment(
                params_for(4096, alpha, proto, mode.messages, 1800 + t as u64).multicast_only(),
            );
            let rounds = mean(reports.iter().map(|r| r.avg_user_rounds()));
            let bw = mean(reports.iter().map(|r| r.bandwidth_overhead));
            print!("  {rounds:>13.4}  {bw:>5.2}");
        }
        println!();
    }
}

/// Figures 19–20: extra bandwidth of adaptive proactive FEC versus the
/// reactive-only baseline (rho = 1), across alpha and across N.
pub fn fig19_20(mode: Mode) {
    let ks = [1usize, 2, 5, 10, 20, 30, 40, 50];
    let overhead = |k: usize, n: u32, alpha: f64, adaptive: bool, seed: u64| -> f64 {
        let proto = ServerConfig {
            block_size: k,
            initial_rho: 1.0,
            adapt_rho: adaptive,
            adapt_num_nack: false,
            ..ServerConfig::default()
        };
        let reports =
            run_experiment(params_for(n, alpha, proto, mode.messages, seed).multicast_only());
        mean(reports.iter().map(|r| r.bandwidth_overhead))
    };

    header(
        "Figure 19",
        "server bandwidth overhead: adaptive rho vs rho = 1, by alpha (N = 4096)",
    );
    print!("{:>4}", "k");
    for a in [0.0, 0.2, 1.0] {
        print!("  a={a:<4} adap  rho1");
    }
    println!();
    for &k in &ks {
        print!("{k:>4}");
        for &alpha in &[0.0, 0.2, 1.0] {
            let ad = overhead(k, 4096, alpha, true, 1900 + k as u64);
            let fx = overhead(k, 4096, alpha, false, 1900 + k as u64);
            print!("  {ad:>10.2} {fx:>5.2}");
        }
        println!();
    }

    header(
        "Figure 20",
        "server bandwidth overhead: adaptive rho vs rho = 1, by N (alpha = 20%)",
    );
    print!("{:>4}", "k");
    for n in [1024u32, 8192, 16384] {
        print!("  N={n:<5} adap  rho1");
    }
    println!();
    for &k in &ks {
        print!("{k:>4}");
        for &n in &[1024u32, 8192, 16384] {
            if !wire_feasible(k, n) {
                print!("  {:>11} {:>5}", "n/a", "n/a");
                continue;
            }
            let ad = overhead(k, n, 0.2, true, 2000 + k as u64);
            let fx = overhead(k, n, 0.2, false, 2000 + k as u64);
            print!("  {ad:>11.2} {fx:>5.2}");
        }
        println!();
    }
}

/// Figure 21: deadline misses and the numNACK trajectory with deadline =
/// 2 rounds, initial numNACK = 200.
pub fn fig21(mode: Mode) {
    header(
        "Figure 21",
        "users missing a 2-round deadline + numNACK adaptation (initial numNACK = 200)",
    );
    let proto = ServerConfig {
        initial_rho: 1.0,
        initial_num_nack: 200,
        max_nack: 200,
        adapt_num_nack: true,
        max_multicast_rounds: 2,
        ..ServerConfig::default()
    };
    let mut params = params_for(4096, 0.2, proto, mode.trajectory * 4, 2100);
    params.sim.deadline_rounds = 2;
    let messages = params.messages;
    let mut run = ExperimentRun::new(params);
    println!(
        "{:>4} {:>10} {:>9} {:>8} {:>8}",
        "msg", "missed", "numNACK", "rho", "usrPkts"
    );
    for msg in 1..=messages {
        let r = run.step();
        println!(
            "{:>4} {:>10} {:>9} {:>8.2} {:>8}",
            msg, r.missed_deadline, r.num_nack, r.rho, r.usr_packets
        );
    }
}

/// SIGCOMM axis: encryption cost vs key-tree degree.
pub fn sigcomm_degree(mode: Mode) {
    header(
        "T-deg [SIGCOMM axis]",
        "avg encryptions per rekey message vs tree degree d (N = 4096)",
    );
    println!(
        "{:>4} {:>14} {:>14} {:>14}",
        "d", "J=0,L=N/4", "J=N/8,L=N/8", "J=N/4,L=0"
    );
    for d in [2u32, 3, 4, 8, 16] {
        let a = encryption_cost_batch(4096, d, 0, 1024, mode.runs, 2200);
        let b = encryption_cost_batch(4096, d, 512, 512, mode.runs, 2201);
        let c = encryption_cost_batch(4096, d, 1024, 0, mode.runs, 2202);
        println!("{d:>4} {a:>14.1} {b:>14.1} {c:>14.1}");
    }
}

/// SIGCOMM axis: batch versus individual rekeying cost.
pub fn sigcomm_batch(mode: Mode) {
    header(
        "T-batch [SIGCOMM axis]",
        "encryptions per interval: batch vs individual rekeying (N = 4096, d = 4)",
    );
    println!(
        "{:>6} {:>6} {:>12} {:>14} {:>9}",
        "J", "L", "batch", "individual", "saving"
    );
    for (j, l) in [
        (0usize, 256usize),
        (0, 1024),
        (256, 256),
        (1024, 1024),
        (1024, 0),
    ] {
        let b = encryption_cost_batch(4096, 4, j, l, mode.runs.min(3), 2300);
        let i = encryption_cost_individual(4096, 4, j, l, 1, 2300);
        println!("{j:>6} {l:>6} {b:>12.1} {i:>14.1} {:>8.1}x", i / b.max(1.0));
    }
}

/// SIGCOMM axis: the closed-form expected-encryptions model vs the real
/// marking algorithm.
pub fn sigcomm_model(mode: Mode) {
    header(
        "T-model [SIGCOMM axis]",
        "closed-form E[encryptions] vs measured marking algorithm (d = 4, N = 4096)",
    );
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "L", "model", "measured", "err%"
    );
    for l in [1usize, 64, 256, 1024, 2048, 3584] {
        let model = keytree::analysis::expected_encryptions_leave_only(4, 6, l as u64);
        let measured = encryption_cost_batch(4096, 4, 0, l, mode.runs, 2500 + l as u64);
        let err = if model > 0.0 {
            100.0 * (measured - model) / model
        } else {
            0.0
        };
        println!("{l:>6} {model:>12.1} {measured:>12.1} {err:>7.1}%");
    }
}

/// SIGCOMM axis: sparseness of the rekey workload.
pub fn sigcomm_sparseness(mode: Mode) {
    header(
        "T-sparse [SIGCOMM axis]",
        "rekey message size vs per-user needs (J = 0, L = N/4, d = 4)",
    );
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "N", "encryptions", "per-user need", "ratio"
    );
    for n in [64u32, 256, 1024, 4096, 16384] {
        let p = workload_stats(n, 4, 0, (n / 4) as usize, mode.runs, 2400, &Layout::DEFAULT);
        println!(
            "{:>6} {:>14.1} {:>14.2} {:>10.1}",
            n,
            p.encryptions,
            p.per_user_need,
            p.encryptions / p.per_user_need.max(1e-9)
        );
    }
}
