//! Ablation studies of the protocol's design choices (DESIGN.md calls
//! these out): block interleaving vs sequential sending, burst vs
//! independent loss, and UKA vs naive encryption packing.
//!
//! Like `figures`, every ablation writes to a caller-supplied `Write` and
//! fans its independent cells out with [`crate::par`], keeping the bytes
//! identical to a serial run at any worker count.

use std::io::{self, Write};

use grouprekey::experiment::{run_experiment, workload_stats, ExperimentParams};
use keytree::{Batch, KeyTree};
use netsim::NetworkConfig;
use rekeymsg::{assign, Layout, SendOrder};
use rekeyproto::ServerConfig;
use wirecrypto::KeyGen;

use crate::{header, mean, par, Mode};

fn base_params(mode: Mode, seed: u64) -> ExperimentParams {
    ExperimentParams {
        protocol: ServerConfig {
            initial_rho: 1.0,
            adapt_rho: false,
            ..ServerConfig::default()
        },
        messages: mode.messages,
        seed,
        ..ExperimentParams::default()
    }
    .multicast_only()
}

/// Interleaved vs sequential send order, under burst and independent
/// loss. Interleaving should pay only when losses are bursty.
pub fn ablation_send_order(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    header(
        out,
        "Ablation: send order",
        "interleaved vs sequential, burst vs independent loss (rho = 1, k = 10)",
    )?;
    writeln!(
        out,
        "{:<12} {:<12} {:>10} {:>12} {:>12}",
        "loss model", "order", "NACKs r1", "bw overhead", "rounds(all)"
    )?;
    let cells: Vec<(bool, SendOrder, &str)> = [false, true]
        .iter()
        .flat_map(|&independent| {
            [
                (independent, SendOrder::Interleaved, "interleaved"),
                (independent, SendOrder::Sequential, "sequential"),
            ]
        })
        .collect();
    let grid = par(&cells, |&(independent, order, _)| {
        let mut params = base_params(mode, 3100);
        params.protocol.send_order = order;
        params.net = NetworkConfig {
            independent_loss: independent,
            ..NetworkConfig::default()
        };
        let reports = run_experiment(params);
        (
            mean(reports.iter().map(|r| r.nacks_round1 as f64)),
            mean(reports.iter().map(|r| r.bandwidth_overhead)),
            mean(reports.iter().map(|r| r.rounds_all_users() as f64)),
        )
    });
    for (&(independent, _, name), &(nacks, bw, rounds)) in cells.iter().zip(&grid) {
        writeln!(
            out,
            "{:<12} {:<12} {:>10.1} {:>12.3} {:>12.2}",
            if independent { "independent" } else { "burst" },
            name,
            nacks,
            bw,
            rounds,
        )?;
    }
    Ok(())
}

/// Burst vs independent loss at identical stationary rates: burstiness is
/// what makes FEC blocks fail together and NACK counts spike.
pub fn ablation_loss_model(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    header(
        out,
        "Ablation: loss model",
        "Markov burst vs independent loss at equal stationary rates",
    )?;
    writeln!(
        out,
        "{:<12} {:>8} {:>10} {:>12} {:>12}",
        "model", "rho", "NACKs r1", "bw overhead", "rounds(all)"
    )?;
    let cells: Vec<(bool, f64)> = [false, true]
        .iter()
        .flat_map(|&independent| [(independent, 1.0), (independent, 1.6)])
        .collect();
    let grid = par(&cells, |&(independent, rho)| {
        let mut params = base_params(mode, 3200);
        params.protocol.initial_rho = rho;
        params.net = NetworkConfig {
            independent_loss: independent,
            ..NetworkConfig::default()
        };
        let reports = run_experiment(params);
        (
            mean(reports.iter().map(|r| r.nacks_round1 as f64)),
            mean(reports.iter().map(|r| r.bandwidth_overhead)),
            mean(reports.iter().map(|r| r.rounds_all_users() as f64)),
        )
    });
    for (&(independent, rho), &(nacks, bw, rounds)) in cells.iter().zip(&grid) {
        writeln!(
            out,
            "{:<12} {:>8.1} {:>10.1} {:>12.3} {:>12.2}",
            if independent { "independent" } else { "burst" },
            rho,
            nacks,
            bw,
            rounds,
        )?;
    }
    Ok(())
}

/// UKA vs naive subtree-order packing: what per-user alignment buys.
pub fn ablation_uka(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    header(
        out,
        "Ablation: key assignment",
        "UKA (one packet per user) vs naive subtree-order packing",
    )?;
    writeln!(
        out,
        "{:>6} | {:>8} {:>8} | {:>10} {:>8} | {:>22}",
        "N", "UKA pkts", "naive", "pkts/user", "max", "P[1-round] p=2% / 20%"
    )?;
    let ns = [256u32, 1024, 4096];
    struct UkaCell {
        uka_packets: f64,
        naive: assign::NaiveAssignmentStats,
    }
    let grid = par(&ns, |&n| {
        let l = (n / 4) as usize;
        let layout = Layout::DEFAULT;
        let uka = workload_stats(n, 4, 0, l, mode.runs, 3300, &layout);

        // Naive stats on a matching workload.
        let mut kg = KeyGen::from_seed(3300);
        let mut tree = KeyTree::balanced(n, 4, &mut kg);
        let leaves: Vec<u32> = (0..l as u32).map(|i| (i * 4) % n).collect();
        let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
        let naive = assign::naive_plan_stats(&tree, &outcome, &layout);
        let uka_plans = assign::plan(&tree, &outcome, &layout).expect("DEFAULT layout fits");
        UkaCell {
            uka_packets: uka.enc_packets.max(uka_plans.len() as f64),
            naive,
        }
    });
    let p_success = |p: f64, m: f64| (1.0 - p).powf(m);
    for (&n, cell) in ns.iter().zip(&grid) {
        writeln!(
            out,
            "{:>6} | {:>8.1} {:>8} | {:>10.2} {:>8} | UKA {:.3}/{:.3} naive {:.3}/{:.3}",
            n,
            cell.uka_packets,
            cell.naive.packets,
            cell.naive.avg_packets_per_user,
            cell.naive.max_packets_per_user,
            p_success(0.02, 1.0),
            p_success(0.20, 1.0),
            p_success(0.02, cell.naive.avg_packets_per_user),
            p_success(0.20, cell.naive.avg_packets_per_user),
        )?;
    }
    writeln!(
        out,
        "(UKA pays a small duplication overhead; naive pays multiple-packet\n\
         dependence per user, collapsing one-round success at 20% loss.)"
    )
}
