//! Figure-regeneration harness.
//!
//! One function per figure/table of the paper's evaluation; the `fig*`
//! binaries are thin wrappers, and `all_figures` runs the lot. Output is
//! aligned plain text (one block per sub-figure) so EXPERIMENTS.md can
//! quote it directly.
//!
//! Set `REKEY_QUICK=1` to cut message counts ~4x for smoke runs.

#![forbid(unsafe_code)]

pub mod ablations;
pub mod figures;

/// Global effort knob.
#[derive(Debug, Clone, Copy)]
pub struct Mode {
    /// Rekey messages simulated per transport data point.
    pub messages: usize,
    /// Marking/UKA repetitions per workload data point.
    pub runs: usize,
    /// Messages for the long adaptive trajectories (figs 12–15, 21).
    pub trajectory: usize,
}

impl Mode {
    /// Reads `REKEY_QUICK` from the environment.
    pub fn from_env() -> Self {
        if std::env::var("REKEY_QUICK").is_ok_and(|v| v != "0") {
            Mode {
                messages: 3,
                runs: 2,
                trajectory: 8,
            }
        } else {
            Mode {
                messages: 10,
                runs: 5,
                trajectory: 25,
            }
        }
    }
}

/// Mean of an iterator of f64.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Writes a figure header.
pub fn header(out: &mut dyn std::io::Write, id: &str, caption: &str) -> std::io::Result<()> {
    writeln!(out)?;
    writeln!(out, "### {id} — {caption}")
}

/// Fans independent figure grid cells out across the task pool, returning
/// results in input order (so the printed tables are byte-identical to a
/// serial run at any `REKEY_THREADS`; `taskpool::map` guarantees the
/// ordering).
///
/// Each cell runs with nested task-pool stages pinned to one worker: the
/// grid is the outermost (and widest) level of parallelism, so letting the
/// per-message datapath fan out again from inside a grid worker would
/// oversubscribe the cores without adding coverage.
pub fn par<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    taskpool::map(items, |_, item| taskpool::with_workers(1, || f(item)))
}

/// A figure-regeneration entry point: writes one figure's text to `out`.
pub type FigFn = fn(Mode, &mut dyn std::io::Write) -> std::io::Result<()>;

/// Every figure and ablation in canonical `all_figures` run order,
/// labelled for timing lines and `BENCH_figures.json`.
pub const ALL_FIGURES: &[(&str, FigFn)] = &[
    ("fig06", figures::fig06),
    ("fig07", figures::fig07),
    ("fig08", figures::fig08),
    ("fig09", figures::fig09),
    ("fig10", figures::fig10),
    ("fig12_13", figures::fig12_13),
    ("fig14", figures::fig14),
    ("fig15", figures::fig15),
    ("fig16", figures::fig16),
    ("fig17", figures::fig17),
    ("fig18", figures::fig18),
    ("fig19_20", figures::fig19_20),
    ("fig21", figures::fig21),
    ("sigcomm_degree", figures::sigcomm_degree),
    ("sigcomm_batch", figures::sigcomm_batch),
    ("sigcomm_sparseness", figures::sigcomm_sparseness),
    ("sigcomm_model", figures::sigcomm_model),
    ("ablation_send_order", ablations::ablation_send_order),
    ("ablation_loss_model", ablations::ablation_loss_model),
    ("ablation_uka", ablations::ablation_uka),
];
