//! Figure-regeneration harness.
//!
//! One function per figure/table of the paper's evaluation; the `fig*`
//! binaries are thin wrappers, and `all_figures` runs the lot. Output is
//! aligned plain text (one block per sub-figure) so EXPERIMENTS.md can
//! quote it directly.
//!
//! Set `REKEY_QUICK=1` to cut message counts ~4x for smoke runs.

#![forbid(unsafe_code)]

pub mod ablations;
pub mod figures;

/// Global effort knob.
#[derive(Debug, Clone, Copy)]
pub struct Mode {
    /// Rekey messages simulated per transport data point.
    pub messages: usize,
    /// Marking/UKA repetitions per workload data point.
    pub runs: usize,
    /// Messages for the long adaptive trajectories (figs 12–15, 21).
    pub trajectory: usize,
}

impl Mode {
    /// Reads `REKEY_QUICK` from the environment.
    pub fn from_env() -> Self {
        if std::env::var("REKEY_QUICK").is_ok_and(|v| v != "0") {
            Mode {
                messages: 3,
                runs: 2,
                trajectory: 8,
            }
        } else {
            Mode {
                messages: 10,
                runs: 5,
                trajectory: 25,
            }
        }
    }
}

/// Mean of an iterator of f64.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Prints a figure header.
pub fn header(id: &str, caption: &str) {
    println!();
    println!("### {id} — {caption}");
}
