//! Figure-regeneration harness.
//!
//! One function per figure/table of the paper's evaluation; the `fig*`
//! binaries are thin wrappers, and `all_figures` runs the lot. Output is
//! aligned plain text (one block per sub-figure) so EXPERIMENTS.md can
//! quote it directly.
//!
//! Set `REKEY_QUICK=1` to cut message counts ~4x for smoke runs.

#![forbid(unsafe_code)]

pub mod ablations;
pub mod figures;
pub mod jsonv;

/// Global effort knob.
#[derive(Debug, Clone, Copy)]
pub struct Mode {
    /// Rekey messages simulated per transport data point.
    pub messages: usize,
    /// Marking/UKA repetitions per workload data point.
    pub runs: usize,
    /// Messages for the long adaptive trajectories (figs 12–15, 21).
    pub trajectory: usize,
}

impl Mode {
    /// Reads `REKEY_QUICK` from the environment.
    pub fn from_env() -> Self {
        if std::env::var("REKEY_QUICK").is_ok_and(|v| v != "0") {
            Mode {
                messages: 3,
                runs: 2,
                trajectory: 8,
            }
        } else {
            Mode {
                messages: 10,
                runs: 5,
                trajectory: 25,
            }
        }
    }
}

/// Mean of an iterator of f64.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Writes a figure header.
pub fn header(out: &mut dyn std::io::Write, id: &str, caption: &str) -> std::io::Result<()> {
    writeln!(out)?;
    writeln!(out, "### {id} — {caption}")
}

/// Fans independent figure grid cells out across the task pool, returning
/// results in input order (so the printed tables are byte-identical to a
/// serial run at any `REKEY_THREADS`; `taskpool::map` guarantees the
/// ordering).
///
/// Each cell runs with nested task-pool stages pinned to one worker: the
/// grid is the outermost (and widest) level of parallelism, so letting the
/// per-message datapath fan out again from inside a grid worker would
/// oversubscribe the cores without adding coverage.
pub fn par<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    taskpool::map(items, |_, item| taskpool::with_workers(1, || f(item)))
}

/// Where a bench binary sends its observability snapshot, resolved from
/// the `--obs-out PATH` flag and the `REKEY_OBS` environment variable.
///
/// Either source activates the sink; activation demands a build with the
/// instrumentation compiled in ([`obs::enabled`]), because a snapshot
/// from a no-op build would be silently empty. [`ObsSink::resolve`]
/// turns that mismatch into a one-line error the binary prints before
/// exiting non-zero.
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    /// Destination for the JSON snapshot (`--obs-out PATH`), if any.
    pub path: Option<String>,
    /// Whether the sink is active at all (path given or `REKEY_OBS=1`).
    active: bool,
}

impl ObsSink {
    /// Resolves the sink from the parsed `--obs-out` value plus the
    /// `REKEY_OBS` environment variable. Errors (with the message the
    /// binary should print verbatim) when output is requested but the
    /// instrumentation is compiled out.
    pub fn resolve(obs_out: Option<String>) -> Result<ObsSink, String> {
        let env_on = std::env::var("REKEY_OBS").is_ok_and(|v| v != "0");
        let active = env_on || obs_out.is_some();
        if active && !obs::enabled() {
            return Err(
                "obs output requested (--obs-out / REKEY_OBS=1) but this binary was built \
                 without the metrics layer; rebuild with `--features obs`"
                    .to_string(),
            );
        }
        Ok(ObsSink {
            path: obs_out,
            active,
        })
    }

    /// Whether any observability output was requested.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Emits the snapshot: JSON to [`ObsSink::path`] when set, and the
    /// human table through `err` (callers pass their stderr handle so
    /// the table shares whatever lock their other diagnostics use).
    /// No-op when the sink is inactive.
    pub fn emit(&self, snap: &obs::Snapshot, err: &mut dyn std::io::Write) -> std::io::Result<()> {
        if !self.active {
            return Ok(());
        }
        if let Some(path) = &self.path {
            std::fs::write(path, snap.to_json())?;
        }
        err.write_all(snap.render_table().as_bytes())
    }
}

/// Where a bench binary sends its flight-recorder trace, resolved from
/// the `--trace-out PATH` flag.
///
/// Like [`ObsSink`], requesting a trace from a build without the
/// instrumentation compiled in is a hard error rather than a silently
/// empty file. The sink brackets the measured region: [`TraceSink::start`]
/// arms the recorder, [`TraceSink::finish`] disarms it, drains every
/// per-thread ring, and writes the merged stream as Chrome trace-event
/// JSON (open it in Perfetto or `chrome://tracing`).
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    /// Destination for the Chrome trace JSON (`--trace-out PATH`), if any.
    pub path: Option<String>,
}

impl TraceSink {
    /// Resolves the sink from the parsed `--trace-out` value. Errors
    /// (with the message the binary should print verbatim) when a trace
    /// is requested but the recorder is compiled out.
    pub fn resolve(trace_out: Option<String>) -> Result<TraceSink, String> {
        if trace_out.is_some() && !obs::enabled() {
            return Err(
                "trace output requested (--trace-out) but this binary was built without \
                 the instrumentation layer; rebuild with `--features obs`"
                    .to_string(),
            );
        }
        Ok(TraceSink { path: trace_out })
    }

    /// Whether a trace was requested.
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    /// Arms the flight recorder (no-op when inactive).
    pub fn start(&self) {
        if self.active() {
            obs::trace::enable(obs::trace::DEFAULT_CAPACITY);
        }
    }

    /// Disarms the recorder, drains it, and writes the Chrome trace JSON
    /// to [`TraceSink::path`], reporting counts on `err`. No-op when the
    /// sink is inactive.
    pub fn finish(&self, err: &mut dyn std::io::Write) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        obs::trace::disable();
        let trace = obs::trace::drain();
        std::fs::write(path, trace.to_chrome_json())?;
        writeln!(
            err,
            "trace: {} events on {} tracks ({} dropped) -> {path}",
            trace.events.len(),
            trace.tracks.len(),
            trace.dropped_total(),
        )
    }
}

/// A figure-regeneration entry point: writes one figure's text to `out`.
pub type FigFn = fn(Mode, &mut dyn std::io::Write) -> std::io::Result<()>;

/// Every figure and ablation in canonical `all_figures` run order,
/// labelled for timing lines and `BENCH_figures.json`.
pub const ALL_FIGURES: &[(&str, FigFn)] = &[
    ("fig06", figures::fig06),
    ("fig07", figures::fig07),
    ("fig08", figures::fig08),
    ("fig09", figures::fig09),
    ("fig10", figures::fig10),
    ("fig12_13", figures::fig12_13),
    ("fig14", figures::fig14),
    ("fig15", figures::fig15),
    ("fig16", figures::fig16),
    ("fig17", figures::fig17),
    ("fig18", figures::fig18),
    ("fig19_20", figures::fig19_20),
    ("fig21", figures::fig21),
    ("sigcomm_degree", figures::sigcomm_degree),
    ("sigcomm_batch", figures::sigcomm_batch),
    ("sigcomm_sparseness", figures::sigcomm_sparseness),
    ("sigcomm_model", figures::sigcomm_model),
    ("ablation_send_order", ablations::ablation_send_order),
    ("ablation_loss_model", ablations::ablation_loss_model),
    ("ablation_uka", ablations::ablation_uka),
];
