//! A minimal zero-dependency JSON parser for the bench tooling.
//!
//! The BENCH emitters hand-write their JSON (see `obs::json`); this is
//! the matching reader, used by `bench_diff` to compare freshly
//! generated reports against committed baselines. Objects parse into
//! order-preserving `Vec<(String, Value)>` pairs — no `HashMap`, so
//! everything downstream iterates deterministically.
//!
//! Supports the full JSON grammar the emitters produce (and standard
//! documents generally): all escape forms including `\uXXXX` with
//! surrogate pairs, nested containers, integer and fractional numbers
//! with exponents. Errors carry the byte offset that broke the parse.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields in source order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(ch);
                            // hex4 leaves pos one past the escape; undo
                            // the generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass
                    // through untouched).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitters_shapes() {
        let doc = parse(
            "{\"schema\": \"bench_x/v1\", \"mode\": \"full\", \"rows\": [\
             {\"n\": 1024, \"wall_ms\": 1.250, \"ok\": true}, \
             {\"n\": 4096, \"wall_ms\": 0.000, \"ok\": false}], \"none\": null}",
        )
        .expect("parse");
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("bench_x/v1")
        );
        let rows = doc.get("rows").and_then(Value::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("n").and_then(Value::as_f64), Some(1024.0));
        assert_eq!(rows[1].get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(doc.get("none"), Some(&Value::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = parse("{\"z\": 1, \"a\": 2}").expect("parse");
        let fields = doc.as_obj().expect("obj");
        assert_eq!(fields[0].0, "z");
        assert_eq!(fields[1].0, "a");
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let doc =
            parse("{\"k\": \"a\\\"b\\\\c\\nd\\u0041\\u00e9 \\ud83d\\udd11 密钥\"}").expect("parse");
        assert_eq!(
            doc.get("k").and_then(Value::as_str),
            Some("a\"b\\c\ndAé \u{1F511} 密钥")
        );
    }

    #[test]
    fn numbers_including_exponents() {
        let doc = parse("[0, -1, 3.5, 1e3, 2.5E-2, 1234567890123]").expect("parse");
        let arr = doc.as_arr().expect("arr");
        let nums: Vec<f64> = arr.iter().filter_map(Value::as_f64).collect();
        assert_eq!(nums, vec![0.0, -1.0, 3.5, 1000.0, 0.025, 1234567890123.0]);
    }

    #[test]
    fn errors_carry_positions() {
        assert!(parse("{").unwrap_err().contains("at byte"));
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1, 2] trailing").unwrap_err().contains("trailing"));
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn committed_bench_artifacts_parse() {
        // The real committed baselines must be readable by this parser —
        // bench_diff depends on it.
        for path in ["BENCH_rekey.json", "BENCH_scale.json", "BENCH_churn.json"] {
            let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
            let full = format!("{repo_root}/{path}");
            let Ok(text) = std::fs::read_to_string(&full) else {
                continue; // tolerated: artifacts absent in odd checkouts
            };
            let doc = parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
            assert!(doc.get("schema").is_some(), "{path}: no schema");
        }
    }
}
