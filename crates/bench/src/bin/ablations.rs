//! Runs the design-choice ablations: send order, loss model, UKA.
fn main() {
    let mode = bench::Mode::from_env();
    bench::ablations::ablation_send_order(mode);
    bench::ablations::ablation_loss_model(mode);
    bench::ablations::ablation_uka(mode);
}
