//! Runs the design-choice ablations: send order, loss model, UKA.
fn main() -> std::io::Result<()> {
    let mode = bench::Mode::from_env();
    let mut out = std::io::stdout().lock();
    bench::ablations::ablation_send_order(mode, &mut out)?;
    bench::ablations::ablation_loss_model(mode, &mut out)?;
    bench::ablations::ablation_uka(mode, &mut out)
}
