//! Long-horizon churn benchmark over the scenario engine: emits
//! `BENCH_churn.json`.
//!
//! Sweeps the five adversarial trace families (`flash_crowd`, `diurnal`,
//! `mass_departure`, `oscillation`, `storm`; see `grouprekey::scenario`)
//! × group size N × tree degree d × compaction {off, on}, running each
//! combination for hundreds of rekey intervals and recording the
//! trajectory-level metrics the paper's Poisson analysis cannot see:
//!
//! * `enc_per_member_mean` — mean distinct encryptions per current
//!   member per interval (the server-cost density);
//! * `bytes_on_wire_total` — total multicast ENC bytes over the run;
//! * `max_depth_run` / `max_depth_final` / `mean_depth_final` — tree
//!   skew: with compaction off, one-sided traces leave survivors
//!   stranded at the historical depth; with compaction on, depth must
//!   track the *current* group size;
//! * `resident_bytes_peak` / `resident_bytes_final` — memory: a
//!   mass-departure trace must not pin the SoA arrays at peak forever;
//! * `relocations_total` and the mean per-interval batch wall.
//!
//! The `identity` section replays the mass-departure acceptance row
//! (compaction on) under 1 and 4 workers and under adversarial
//! `taskpool::with_schedule` perturbation, comparing whole-run digests —
//! the gate is bit-identity of the entire rekey stream.
//!
//! Flags: `--smoke` shrinks the grid (same JSON shape); `--check <path>`
//! validates an existing report, including the bounded-depth and
//! memory-reclamation acceptance criteria on full-mode reports;
//! `--out <path>` overrides the output path; `--obs-out <path>` (or
//! `REKEY_OBS=1`) snapshots the `scenario.*` / `stage.*` metrics over
//! the acceptance row (requires `--features obs`).
//!
//! `--series-out <path>` replays the acceptance row once more with a
//! per-interval [`obs::series::SeriesRecorder`] attached and writes the
//! `obs_series/v1` time-series (users/churn/enc-per-member/bytes-on-
//! wire/depth/resident-bytes curves, plus per-interval stage-wall deltas
//! in obs-enabled builds). `--trace-out <path>` records that same replay
//! in the flight recorder and writes Chrome trace-event JSON (open in
//! Perfetto; requires `--features obs`). The replay's digest must match
//! the grid run's — recording must not perturb the rekey stream.

use std::time::Instant;

use grouprekey::scenario::{self, ScenarioConfig, ScenarioKind, ScenarioReport};
use grouprekey::ServerOptions;
use keytree::CompactionPolicy;

const SCHEMA: &str = "bench_churn/v1";
const IDENTITY_WORKERS: [usize; 2] = [1, 4];
const IDENTITY_SCHED_SEEDS: [u64; 2] = [0xA5, 0x5A];

#[derive(Clone, Copy)]
struct Cell {
    kind: ScenarioKind,
    n: u32,
    d: u32,
    compaction: bool,
    intervals: usize,
}

fn grid(smoke: bool) -> Vec<Cell> {
    let (sizes, degrees, intervals): (&[u32], &[u32], usize) = if smoke {
        (&[256], &[4], 24)
    } else {
        (&[1 << 10, 1 << 13], &[4, 8], 256)
    };
    let mut cells = Vec::new();
    for kind in ScenarioKind::ALL {
        for &n in sizes {
            for &d in degrees {
                for compaction in [false, true] {
                    cells.push(Cell {
                        kind,
                        n,
                        d,
                        compaction,
                        intervals,
                    });
                }
            }
        }
    }
    cells
}

/// The identity-gate cell: the acceptance row — mass departure with
/// compaction on at the largest N in the grid.
fn identity_cell(smoke: bool) -> Cell {
    Cell {
        kind: ScenarioKind::MassDeparture,
        n: if smoke { 256 } else { 1 << 13 },
        d: 4,
        compaction: true,
        intervals: if smoke { 24 } else { 256 },
    }
}

fn config_for(cell: Cell) -> ScenarioConfig {
    let mut options = ServerOptions {
        degree: cell.d,
        ..ServerOptions::default()
    };
    if cell.compaction {
        options.compaction = CompactionPolicy::DEFAULT_ON;
    }
    ScenarioConfig {
        kind: cell.kind,
        seed: 0xC4E2_0007 ^ u64::from(cell.n) ^ (u64::from(cell.d) << 32),
        initial_users: cell.n,
        intervals: cell.intervals,
        options,
    }
}

struct CellReport {
    cell: Cell,
    report: ScenarioReport,
    users_final: usize,
    mean_depth_final: f64,
    max_depth_final: u32,
    batch_wall_ms_mean: f64,
    /// Whether `resident_bytes` strictly dropped at any point in the
    /// trajectory — the memory-reclamation acceptance signal.
    resident_nonmonotonic: bool,
}

fn bench_cell(cell: Cell) -> CellReport {
    let start = Instant::now();
    let report = scenario::run(config_for(cell));
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    let last = report.stats.last().expect("at least one interval");
    let resident_nonmonotonic = report
        .stats
        .windows(2)
        .any(|w| w[1].resident_bytes < w[0].resident_bytes);
    CellReport {
        cell,
        users_final: last.users,
        mean_depth_final: last.mean_depth,
        max_depth_final: last.max_depth,
        batch_wall_ms_mean: wall_ms / report.stats.len().max(1) as f64,
        resident_nonmonotonic,
        report,
    }
}

struct IdentityReport {
    cell: Cell,
    matches_sequential: bool,
}

/// Replays the acceptance row at each worker count, and at each schedule
/// perturbation seed, demanding identical whole-run digests and
/// trajectories.
fn bench_identity(cell: Cell) -> IdentityReport {
    let run = |workers: usize, sched_seed: Option<u64>| -> ScenarioReport {
        taskpool::with_workers(workers, || match sched_seed {
            Some(seed) => taskpool::with_schedule(seed, || scenario::run(config_for(cell))),
            None => scenario::run(config_for(cell)),
        })
    };
    let baseline = run(IDENTITY_WORKERS[0], None);
    let mut matches = true;
    for &w in &IDENTITY_WORKERS {
        matches &= run(w, None) == baseline;
        for &seed in &IDENTITY_SCHED_SEEDS {
            matches &= run(w, Some(seed)) == baseline;
        }
    }
    IdentityReport {
        cell,
        matches_sequential: matches,
    }
}

// ---------------------------------------------------------------------------
// JSON emit + check
// ---------------------------------------------------------------------------

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

fn render_json(mode: &str, cells: &[CellReport], identity: &IdentityReport) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|r| {
            format!(
                "    {{\"kind\": \"{}\", \"n\": {}, \"d\": {}, \"compaction\": {}, \
                 \"intervals\": {}, \"users_final\": {}, \"enc_per_member_mean\": {}, \
                 \"bytes_on_wire_total\": {}, \"max_depth_run\": {}, \"max_depth_final\": {}, \
                 \"mean_depth_final\": {}, \"resident_bytes_peak\": {}, \
                 \"resident_bytes_final\": {}, \"resident_nonmonotonic\": {}, \
                 \"relocations_total\": {}, \
                 \"batch_wall_ms_mean\": {}, \"digest\": \"{:016x}\"}}",
                r.cell.kind.name(),
                r.cell.n,
                r.cell.d,
                r.cell.compaction,
                r.cell.intervals,
                r.users_final,
                fmt_f(r.report.mean_enc_per_member()),
                r.report.total_bytes_on_wire(),
                r.report.max_depth(),
                r.max_depth_final,
                fmt_f(r.mean_depth_final),
                r.report.peak_resident_bytes(),
                r.report.final_resident_bytes(),
                r.resident_nonmonotonic,
                r.report.total_relocations(),
                fmt_f(r.batch_wall_ms_mean),
                r.report.digest,
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"identity\": {{\n    \
         \"kind\": \"{}\", \"n\": {}, \"d\": {}, \"compaction\": {},\n    \
         \"workers\": [{}, {}], \"sched_seeds\": [{}, {}],\n    \
         \"matches_sequential\": {}\n  }},\n  \"churn\": [\n{}\n  ]\n}}\n",
        identity.cell.kind.name(),
        identity.cell.n,
        identity.cell.d,
        identity.cell.compaction,
        IDENTITY_WORKERS[0],
        IDENTITY_WORKERS[1],
        IDENTITY_SCHED_SEEDS[0],
        IDENTITY_SCHED_SEEDS[1],
        identity.matches_sequential,
        rows.join(",\n")
    )
}

/// Structural well-formedness: balanced braces/brackets outside strings,
/// non-empty, object at the top level.
fn json_well_formed(text: &str) -> bool {
    let trimmed = text.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return false;
    }
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in trimmed.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string
}

/// Extracts the integer value of `"key": <digits>` from one JSON row line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validates a previously emitted `BENCH_churn.json`. Returns a list of
/// problems (empty = valid). Full-mode reports must additionally satisfy
/// the acceptance criteria: bounded final depth and non-monotonic
/// resident bytes on the compaction-on mass-departure and oscillation
/// rows.
fn check_report(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    if !json_well_formed(text) {
        problems.push("not a well-formed JSON object".to_string());
        return problems;
    }
    for key in [
        "\"schema\"",
        SCHEMA,
        "\"identity\"",
        "\"churn\"",
        "\"enc_per_member_mean\"",
        "\"max_depth_final\"",
        "\"resident_bytes_peak\"",
        "\"resident_bytes_final\"",
    ] {
        if !text.contains(key) {
            problems.push(format!("missing {key}"));
        }
    }
    if !text.contains("\"matches_sequential\": true") {
        problems.push("scenario replay did not match across workers/schedules".to_string());
    }
    for kind in ScenarioKind::ALL {
        let pat = format!("\"kind\": \"{}\"", kind.name());
        if !text.contains(&pat) {
            problems.push(format!("missing trace family {}", kind.name()));
        }
    }
    if !text.contains("\"mode\": \"full\"") {
        return problems;
    }
    // Acceptance criteria on the compaction-on rows of the one-sided
    // traces. Rows are one per line and are the only lines carrying a
    // "digest" field (which keeps the identity header out of this scan),
    // so a line scan suffices.
    for line in text.lines() {
        let one_sided = line.contains("\"kind\": \"mass_departure\"")
            || line.contains("\"kind\": \"oscillation\"");
        if !one_sided || !line.contains("\"compaction\": true") || !line.contains("\"digest\"") {
            continue;
        }
        let (Some(users), Some(d), Some(depth_final)) = (
            field_u64(line, "users_final"),
            field_u64(line, "d"),
            field_u64(line, "max_depth_final"),
        ) else {
            problems.push("row missing users_final/d/max_depth_final".to_string());
            continue;
        };
        // Bounded depth: within 2 levels of the balanced ideal for the
        // *final* population (compaction budget + trailing churn slack).
        let mut ideal = 0u64;
        let mut cap = 1u64;
        while cap < users.max(1) {
            cap *= u64::from(d as u32).max(2);
            ideal += 1;
        }
        if depth_final > ideal + 2 {
            problems.push(format!(
                "unbounded depth: final depth {depth_final} vs ideal {ideal} \
                 for {users} users (line: {})",
                line.trim()
            ));
        }
        if !line.contains("\"resident_nonmonotonic\": true") {
            problems.push(format!(
                "monotonic resident_bytes trajectory (line: {})",
                line.trim()
            ));
        }
        // An ended mass departure must also settle well below peak, not
        // just dip somewhere (oscillation legitimately refills).
        if line.contains("\"kind\": \"mass_departure\"") {
            let (Some(peak), Some(fin)) = (
                field_u64(line, "resident_bytes_peak"),
                field_u64(line, "resident_bytes_final"),
            ) else {
                problems.push("row missing resident_bytes fields".to_string());
                continue;
            };
            if fin * 2 > peak {
                problems.push(format!(
                    "resident_bytes stuck near peak: final {fin} vs peak {peak} (line: {})",
                    line.trim()
                ));
            }
        }
    }
    problems
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = std::env::var("REKEY_QUICK").is_ok_and(|v| v != "0");
    let mut out_path = "BENCH_churn.json".to_string();
    let mut check_path: Option<String> = None;
    let mut obs_out: Option<String> = None;
    let mut series_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--check" => check_path = Some(it.next().expect("--check needs a path")),
            "--obs-out" => obs_out = Some(it.next().expect("--obs-out needs a path")),
            "--series-out" => series_out = Some(it.next().expect("--series-out needs a path")),
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; use [--smoke] [--out PATH] [--check PATH] \
                     [--obs-out PATH] [--series-out PATH] [--trace-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let obs_sink = match bench::ObsSink::resolve(obs_out) {
        Ok(sink) => sink,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };
    let trace_sink = match bench::TraceSink::resolve(trace_out) {
        Ok(sink) => sink,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };

    if let Some(path) = check_path {
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("BENCH check FAILED: cannot read {path}");
            std::process::exit(1);
        };
        let problems = check_report(&text);
        if problems.is_empty() {
            println!("BENCH check ok: {path}");
            return;
        }
        for p in &problems {
            eprintln!("BENCH check FAILED: {p}");
        }
        std::process::exit(1);
    }

    let mode = if smoke { "smoke" } else { "full" };
    let cells = grid(smoke);
    eprintln!("churn: {} trace runs ({mode})", cells.len());
    let obs_cell = identity_cell(smoke);
    let mut obs_snapshot: Option<obs::Snapshot> = None;
    let mut reports = Vec::with_capacity(cells.len());
    for cell in cells {
        if obs_sink.active() {
            obs::reset();
        }
        let r = bench_cell(cell);
        if obs_sink.active()
            && (cell.kind, cell.n, cell.d, cell.compaction)
                == (obs_cell.kind, obs_cell.n, obs_cell.d, obs_cell.compaction)
        {
            obs_snapshot = Some(obs::snapshot());
        }
        eprintln!(
            "  {:<14} N={:<5} d={:<2} compact={:<5} users {:>5} depth {}->{} \
             enc/mem {:>6.3} reloc {:>5} {:>7.3} ms/batch",
            cell.kind.name(),
            cell.n,
            cell.d,
            cell.compaction,
            r.users_final,
            r.report.max_depth(),
            r.max_depth_final,
            r.report.mean_enc_per_member(),
            r.report.total_relocations(),
            r.batch_wall_ms_mean,
        );
        reports.push(r);
    }

    let id_cell = identity_cell(smoke);
    eprintln!(
        "identity: {} N={} d={} workers {:?} sched seeds {:?}",
        id_cell.kind.name(),
        id_cell.n,
        id_cell.d,
        IDENTITY_WORKERS,
        IDENTITY_SCHED_SEEDS
    );
    let identity = bench_identity(id_cell);
    eprintln!("  matches_sequential={}", identity.matches_sequential);

    // Instrumented replay of the acceptance row: per-interval time-series
    // and/or a flight-recorder trace. The digest must match the grid
    // run's — recording is observation, not perturbation.
    if series_out.is_some() || trace_sink.active() {
        trace_sink.start();
        let mut series = obs::series::SeriesRecorder::new();
        let recorded = scenario::ScenarioEngine::new(config_for(id_cell)).run_recorded(&mut series);
        trace_sink
            .finish(&mut std::io::stderr().lock())
            .expect("write trace JSON");
        if let Some(path) = &series_out {
            std::fs::write(path, series.to_json()).expect("write series JSON");
            eprintln!("wrote {}-interval time-series to {path}", series.len());
        }
        let grid_digest = reports
            .iter()
            .find(|r| {
                (r.cell.kind, r.cell.n, r.cell.d, r.cell.compaction)
                    == (id_cell.kind, id_cell.n, id_cell.d, id_cell.compaction)
            })
            .map(|r| r.report.digest);
        if grid_digest != Some(recorded.digest) {
            eprintln!(
                "FAILED: recorded replay digest {:016x} differs from grid run {:?}",
                recorded.digest, grid_digest
            );
            std::process::exit(1);
        }
    }

    let json = render_json(mode, &reports, &identity);
    let problems = check_report(&json);
    std::fs::write(&out_path, &json).expect("write BENCH_churn.json");
    println!("wrote {out_path}");

    if obs_sink.active() {
        let snap = obs_snapshot.expect("the obs cell is always in the grid");
        std::io::Write::write_all(
            &mut std::io::stderr().lock(),
            snap.render_table().as_bytes(),
        )
        .expect("write obs table");
        if let Some(path) = &obs_sink.path {
            std::fs::write(path, snap.to_json()).expect("write obs snapshot");
            eprintln!("wrote obs snapshot to {path}");
        }
    }

    let mut failed = false;
    for p in &problems {
        eprintln!("FAILED: {p}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
