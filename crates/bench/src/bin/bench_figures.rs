//! Tracked simulation-engine benchmark: emits `BENCH_figures.json`.
//!
//! Runs every figure of `all_figures` twice at the quick-mode workload
//! (the `REKEY_QUICK=1` parameters, so the tracked baseline is a fixed
//! workload): once with the task pool pinned to one worker (the serial
//! engine) and once at the session's default worker count. Records per
//! figure the serial and parallel wall time, the speedup, and whether the
//! two runs produced byte-identical figure text — the engine's core
//! determinism contract. A final section measures the engine's raw packet
//! rate on a standard transport experiment.
//!
//! Flags: `--smoke` runs a cheap figure subset (same JSON shape);
//! `--check <path>` validates an existing JSON file and exits non-zero if
//! it is missing, malformed, or records a serial/parallel divergence;
//! `--out <path>` overrides the output path.

use std::time::Instant;

use bench::{FigFn, Mode, ALL_FIGURES};
use grouprekey::experiment::{run_experiment, ExperimentParams};

const SCHEMA: &str = "bench_figures/v1";

/// The quick-mode workload, fixed independent of the environment so the
/// tracked numbers always describe the same grid.
const QUICK: Mode = Mode {
    messages: 3,
    runs: 2,
    trajectory: 8,
};

/// Cheap-but-representative subset for CI smoke runs: one workload grid,
/// one adaptive trajectory, one table, one ablation.
const SMOKE_FIGURES: [&str; 4] = [
    "fig06",
    "fig14",
    "sigcomm_sparseness",
    "ablation_loss_model",
];

struct FigureReport {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    byte_identical: bool,
}

impl FigureReport {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            0.0
        }
    }
}

fn run_figure(name: &'static str, f: FigFn) -> FigureReport {
    let mut serial_out: Vec<u8> = Vec::new();
    let start = Instant::now();
    let serial_res = taskpool::with_workers(1, || f(QUICK, &mut serial_out));
    let serial_ms = start.elapsed().as_secs_f64() * 1000.0;

    let mut parallel_out: Vec<u8> = Vec::new();
    let start = Instant::now();
    let parallel_res = f(QUICK, &mut parallel_out);
    let parallel_ms = start.elapsed().as_secs_f64() * 1000.0;

    FigureReport {
        name,
        serial_ms,
        parallel_ms,
        byte_identical: serial_res.is_ok() && parallel_res.is_ok() && serial_out == parallel_out,
    }
}

struct EngineReport {
    users: usize,
    messages: usize,
    packets: f64,
    wall_s: f64,
}

/// Raw engine packet rate: one standard quick-mode transport experiment,
/// counting every multicast ENC/parity and unicast USR packet the server
/// put on the wire.
fn bench_engine() -> EngineReport {
    let params = ExperimentParams {
        messages: QUICK.messages,
        seed: 42,
        ..ExperimentParams::default()
    };
    let users = params.net.n_users.max(params.n as usize);
    let start = Instant::now();
    let reports = run_experiment(params);
    let wall_s = start.elapsed().as_secs_f64();
    let packets: f64 = reports
        .iter()
        .map(|r| r.bandwidth_overhead * r.enc_packets as f64 + r.usr_packets as f64)
        .sum();
    EngineReport {
        users,
        messages: reports.len(),
        packets,
        wall_s,
    }
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

fn render_json(mode: &str, workers: usize, figures: &[FigureReport], eng: &EngineReport) -> String {
    let serial_total: f64 = figures.iter().map(|f| f.serial_ms).sum();
    let parallel_total: f64 = figures.iter().map(|f| f.parallel_ms).sum();
    let all_identical = figures.iter().all(|f| f.byte_identical);
    let total_speedup = if parallel_total > 0.0 {
        serial_total / parallel_total
    } else {
        0.0
    };
    let fig_json: Vec<String> = figures
        .iter()
        .map(|f| {
            format!(
                "    {{\"name\": \"{}\", \"serial_ms\": {}, \"parallel_ms\": {}, \
                 \"speedup\": {}, \"byte_identical\": {}}}",
                f.name,
                fmt_f(f.serial_ms),
                fmt_f(f.parallel_ms),
                fmt_f(f.speedup()),
                f.byte_identical
            )
        })
        .collect();
    let pkt_rate = if eng.wall_s > 0.0 {
        eng.packets / eng.wall_s
    } else {
        0.0
    };
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"workers\": {workers},\n  \
         \"figures\": [\n{}\n  ],\n  \"totals\": {{\n    \"serial_ms\": {},\n    \
         \"parallel_ms\": {},\n    \"speedup\": {},\n    \"byte_identical\": {}\n  }},\n  \
         \"engine\": {{\n    \"users\": {},\n    \"messages\": {},\n    \"packets\": {},\n    \
         \"wall_s\": {},\n    \"packets_per_sec\": {}\n  }}\n}}\n",
        fig_json.join(",\n"),
        fmt_f(serial_total),
        fmt_f(parallel_total),
        fmt_f(total_speedup),
        all_identical,
        eng.users,
        eng.messages,
        fmt_f(eng.packets),
        fmt_f(eng.wall_s),
        fmt_f(pkt_rate),
    )
}

/// Structural well-formedness: balanced braces/brackets outside strings,
/// non-empty, object at the top level.
fn json_well_formed(text: &str) -> bool {
    let trimmed = text.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return false;
    }
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in trimmed.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string
}

/// Validates a previously emitted `BENCH_figures.json`. Returns a list of
/// problems (empty = valid).
fn check_report(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    if !json_well_formed(text) {
        problems.push("not a well-formed JSON object".to_string());
        return problems;
    }
    for key in [
        "\"schema\"",
        SCHEMA,
        "\"figures\"",
        "\"serial_ms\"",
        "\"parallel_ms\"",
        "\"speedup\"",
        "\"totals\"",
        "\"engine\"",
        "\"packets_per_sec\"",
    ] {
        if !text.contains(key) {
            problems.push(format!("missing {key}"));
        }
    }
    if text.contains("\"byte_identical\": false") {
        problems.push("parallel figure output diverged from serial".to_string());
    }
    problems
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_figures.json".to_string();
    let mut check_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                let Some(path) = it.next() else {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                };
                out_path = path;
            }
            "--check" => {
                let Some(path) = it.next() else {
                    eprintln!("--check needs a path");
                    std::process::exit(2);
                };
                check_path = Some(path);
            }
            other => {
                eprintln!("unknown flag {other}; use [--smoke] [--out PATH] [--check PATH]");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("BENCH check FAILED: cannot read {path}");
            std::process::exit(1);
        };
        let problems = check_report(&text);
        if problems.is_empty() {
            println!("BENCH check ok: {path}");
            return;
        }
        for p in &problems {
            eprintln!("BENCH check FAILED: {p}");
        }
        std::process::exit(1);
    }

    let mode = if smoke { "smoke" } else { "full" };
    let workers = taskpool::max_workers();
    let selected: Vec<(&'static str, FigFn)> = ALL_FIGURES
        .iter()
        .filter(|(name, _)| !smoke || SMOKE_FIGURES.contains(name))
        .copied()
        .collect();

    eprintln!(
        "figures: {} of {} ({mode}), {} worker(s), quick-mode grid",
        selected.len(),
        ALL_FIGURES.len(),
        workers
    );
    let mut figures = Vec::with_capacity(selected.len());
    for (name, f) in selected {
        let rep = run_figure(name, f);
        eprintln!(
            "  {name}: serial {:.0} ms, parallel {:.0} ms, speedup {:.2}x, identical={}",
            rep.serial_ms,
            rep.parallel_ms,
            rep.speedup(),
            rep.byte_identical
        );
        figures.push(rep);
    }
    eprintln!("engine: packet rate on the standard quick experiment");
    let eng = bench_engine();
    eprintln!(
        "  {} users, {} messages, {:.0} packets in {:.2} s ({:.0} pkt/s)",
        eng.users,
        eng.messages,
        eng.packets,
        eng.wall_s,
        eng.packets / eng.wall_s.max(1e-9)
    );

    let diverged = figures.iter().any(|f| !f.byte_identical);
    let json = render_json(mode, workers, &figures, &eng);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("FAILED: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    if diverged {
        eprintln!("FAILED: parallel figure output diverged from serial");
        std::process::exit(1);
    }
}
