//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() {
    bench::figures::fig06(bench::Mode::from_env());
}
