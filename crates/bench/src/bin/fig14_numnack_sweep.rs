//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() {
    bench::figures::fig14(bench::Mode::from_env());
}
