//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() {
    bench::figures::fig12_13(bench::Mode::from_env());
}
