//! Tracked datapath benchmark: emits `BENCH_rekey.json`.
//!
//! Measures the rekey datapath before/after the vectorized rewrite:
//!
//! * `encode` — single-thread FEC parity throughput at k = 64, packet
//!   length 1024. The "before" number re-implements the pre-rewrite path
//!   faithfully (naive O(k²) Lagrange rows, a per-packet `to_vec()` row
//!   clone, the scalar byte-at-a-time multiply-accumulate) so the speedup
//!   is tracked against a fixed baseline, not against whatever the tree
//!   shipped last week.
//! * `decode` — block reconstruction latency with half the data erased,
//!   before (per-cell Lagrange generator build, every share validated,
//!   fresh scratch per call) vs. after (persistent [`rse::Decoder`]).
//! * `parallel` — bit-for-bit identity of the parallel proactive encode
//!   against a single-worker run of the same message.
//! * `batch_rekey` — end-to-end wall time of one server batch (marking,
//!   UKA, sealing, block build, round-one schedule) at group sizes
//!   N ∈ {2^10, 2^14, 2^17}.
//!
//! Flags: `--smoke` shrinks measurement windows/reps (same sections, same
//! JSON shape); `--check <path>` validates an existing JSON file and
//! exits non-zero if it is missing, malformed, or records a parallel
//! mismatch; `--out <path>` overrides the output path; `--obs-out <path>`
//! (or `REKEY_OBS=1`) dumps the metrics snapshot collected during the
//! run — JSON to the path, human table to stderr — and requires a build
//! with `--features obs`. `--trace-out <path>` records the `batch_rekey`
//! section in the flight recorder and writes Chrome trace-event JSON
//! (open in Perfetto; requires `--features obs`).

use std::hint::black_box;
use std::time::{Duration, Instant};

use gf256::{Gf256, Matrix};
use keytree::Batch;
use rse::{BlockEncoder, Decoder, Share, MAX_SYMBOLS};

const ENCODE_K: usize = 64;
const PACKET_LEN: usize = 1024;
const SCHEMA: &str = "bench_rekey/v1";

fn point(index: usize) -> Gf256 {
    Gf256::alpha_pow(index)
}

// ---------------------------------------------------------------------------
// Faithful pre-rewrite baseline paths
// ---------------------------------------------------------------------------

/// The encoder as it stood before the rewrite: coefficient rows derived
/// with the naive O(k²) two-product formula, cached, but **cloned with
/// `to_vec()` on every parity call** and applied with the scalar
/// byte-at-a-time kernel.
struct BaselineEncoder {
    k: usize,
    rows: Vec<Vec<Gf256>>,
}

impl BaselineEncoder {
    fn new(k: usize) -> Self {
        BaselineEncoder {
            k,
            rows: Vec::new(),
        }
    }

    fn naive_row(&self, parity_index: usize) -> Vec<Gf256> {
        let x = point(self.k + parity_index);
        (0..self.k)
            .map(|i| {
                let xi = point(i);
                let mut num = Gf256::ONE;
                let mut den = Gf256::ONE;
                for j in 0..self.k {
                    if j != i {
                        num *= x + point(j);
                        den *= xi + point(j);
                    }
                }
                num * den.inv().unwrap_or(Gf256::ZERO)
            })
            .collect()
    }

    fn parity(&mut self, parity_index: usize, data: &[Vec<u8>]) -> Vec<u8> {
        while self.rows.len() <= parity_index {
            let row = self.naive_row(self.rows.len());
            self.rows.push(row);
        }
        // The pre-rewrite per-packet clone, reproduced on purpose.
        let row = self.rows[parity_index].to_vec();
        let len = data[0].len();
        let mut out = vec![0u8; len];
        for (coeff, d) in row.iter().zip(data) {
            Gf256::mul_acc_slice(*coeff, d, &mut out);
        }
        out
    }
}

/// The decoder as it stood before the rewrite: every share validated (even
/// ones past the first k), the generator matrix built cell by cell with an
/// O(k) Lagrange product per cell, fresh scratch allocations per call, and
/// the scalar multiply-accumulate for reconstruction.
fn baseline_decode(k: usize, shares: &[Share]) -> Option<Vec<Vec<u8>>> {
    let len = shares.first()?.data.len();
    let mut seen = vec![false; MAX_SYMBOLS];
    let mut chosen: Vec<&Share> = Vec::new();
    for share in shares {
        if share.index >= MAX_SYMBOLS || share.data.len() != len || seen[share.index] {
            return None;
        }
        seen[share.index] = true;
        if chosen.len() < k {
            chosen.push(share);
        }
    }
    if chosen.len() < k {
        return None;
    }
    let lagrange_cell = |x: Gf256, i: usize| {
        let xi = point(i);
        let mut num = Gf256::ONE;
        let mut den = Gf256::ONE;
        for j in 0..k {
            if j != i {
                num *= x + point(j);
                den *= xi + point(j);
            }
        }
        num * den.inv().unwrap_or(Gf256::ZERO)
    };
    let gen = Matrix::from_fn(k, k, |r, c| {
        let s = chosen[r];
        if s.index < k {
            if s.index == c {
                Gf256::ONE
            } else {
                Gf256::ZERO
            }
        } else {
            lagrange_cell(point(s.index), c)
        }
    });
    let inv = gen.inverse()?;
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let mut body = vec![0u8; len];
        for (r, s) in chosen.iter().enumerate() {
            Gf256::mul_acc_slice(inv[(i, r)], &s.data, &mut body);
        }
        out.push(body);
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Measurement harness
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Effort {
    window: Duration,
    reps: usize,
    rekey_reps: usize,
}

impl Effort {
    fn full() -> Self {
        Effort {
            window: Duration::from_millis(200),
            reps: 3,
            rekey_reps: 3,
        }
    }

    fn smoke() -> Self {
        Effort {
            window: Duration::from_millis(25),
            reps: 1,
            rekey_reps: 1,
        }
    }
}

/// Best ops/sec over `reps` measurement windows.
fn ops_per_sec(effort: Effort, mut op: impl FnMut()) -> f64 {
    // Warm-up: one untimed call (row caches, page faults).
    op();
    let mut best = 0.0f64;
    for _ in 0..effort.reps {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < effort.window {
            op();
            iters += 1;
        }
        let rate = iters as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

fn block(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..len).map(|b| (i * 37 + b * 11 + 5) as u8).collect())
        .collect()
}

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

struct EncodeReport {
    before_pps: f64,
    after_pps: f64,
}

fn bench_encode(effort: Effort) -> EncodeReport {
    let data = block(ENCODE_K, PACKET_LEN);
    // Steady-state server: rows already cached, cycle through a small set
    // of parity indices so both paths measure the per-packet cost alone.
    const ROWS: usize = 8;

    let mut before = BaselineEncoder::new(ENCODE_K);
    for j in 0..ROWS {
        black_box(before.parity(j, &data));
    }
    let mut j = 0usize;
    let before_pps = ops_per_sec(effort, || {
        black_box(before.parity(j % ROWS, &data));
        j += 1;
    });

    let mut after = BlockEncoder::new(ENCODE_K).unwrap();
    after.warm(ROWS).unwrap();
    let mut out = vec![0u8; PACKET_LEN];
    let mut j = 0usize;
    let after_pps = ops_per_sec(effort, || {
        after.parity_into(j % ROWS, &data, &mut out).unwrap();
        black_box(&out);
        j += 1;
    });

    EncodeReport {
        before_pps,
        after_pps,
    }
}

struct DecodeReport {
    erasures: usize,
    before_ms: f64,
    after_ms: f64,
}

fn bench_decode(effort: Effort) -> DecodeReport {
    let k = ENCODE_K;
    let erasures = k / 2;
    let data = block(k, PACKET_LEN);
    let mut enc = BlockEncoder::new(k).unwrap();
    // Half the data survives; the rest is reconstructed from parity.
    let mut shares: Vec<Share> = (erasures..k)
        .map(|i| Share {
            index: i,
            data: data[i].clone(),
        })
        .collect();
    for p in 0..erasures {
        shares.push(Share {
            index: k + p,
            data: enc.parity(p, &data).unwrap(),
        });
    }

    let before = ops_per_sec(effort, || {
        black_box(baseline_decode(k, &shares)).unwrap();
    });
    let mut decoder = Decoder::new(k).unwrap();
    let after = ops_per_sec(effort, || {
        black_box(decoder.decode(&shares)).unwrap();
    });
    DecodeReport {
        erasures,
        before_ms: 1000.0 / before,
        after_ms: 1000.0 / after,
    }
}

struct ParallelReport {
    blocks: usize,
    workers: usize,
    matches_sequential: bool,
}

/// Encodes the same rekey message sequentially and with a worker pool and
/// compares the schedules byte for byte.
fn bench_parallel() -> ParallelReport {
    let workers = 4;
    let make_session = || {
        let mut server =
            grouprekey::KeyServer::bootstrap(1024, grouprekey::ServerOptions::default());
        let leaves: Vec<u32> = (0..96u32).map(|i| i * 8).collect();
        server.rekey(Batch::new(vec![], leaves))
    };
    let sequential = taskpool::with_workers(1, || {
        let mut a = make_session();
        a.session.start()
    });
    let parallel = taskpool::with_workers(workers, || {
        let mut a = make_session();
        a.session.start()
    });
    let blocks = make_session().session.blocks().block_count();
    ParallelReport {
        blocks,
        workers,
        matches_sequential: sequential == parallel,
    }
}

struct RekeyPoint {
    n: u32,
    joins: usize,
    leaves: usize,
    /// Whether the timed region covers the whole message build (marking,
    /// UKA, sealing, FEC blocks, round-one schedule) or only the key-tree
    /// batch update. The wire format's 16-bit node IDs cap full messages
    /// near N = 2^15·(d-1)/d, so at 2^17 only the tree update is timed.
    full_message: bool,
    wall_ms: f64,
}

fn bench_batch_rekey(effort: Effort) -> Vec<RekeyPoint> {
    const JOINS: usize = 64;
    const LEAVES: usize = 64;
    [1u32 << 10, 1 << 14, 1 << 17]
        .into_iter()
        .map(|n| {
            let full_message = n <= 1 << 14;
            let mut best = f64::INFINITY;
            for _ in 0..effort.rekey_reps {
                let leaves: Vec<u32> = (0..LEAVES as u32).map(|i| i * (n / 128)).collect();
                let wall = if full_message {
                    let mut server =
                        grouprekey::KeyServer::bootstrap(n, grouprekey::ServerOptions::default());
                    let joins: Vec<(u32, wirecrypto::SymKey)> = (0..JOINS as u32)
                        .map(|i| (n + i, server.mint_individual_key()))
                        .collect();
                    let batch = Batch::new(joins, leaves);
                    let start = Instant::now();
                    let artifacts = server.rekey(batch);
                    let wall = start.elapsed().as_secs_f64() * 1000.0;
                    black_box(&artifacts);
                    wall
                } else {
                    let mut keygen = wirecrypto::KeyGen::from_seed(7);
                    let mut tree = keytree::KeyTree::balanced(n, 4, &mut keygen);
                    let joins: Vec<(u32, wirecrypto::SymKey)> = (0..JOINS as u32)
                        .map(|i| (n + i, keygen.next_key()))
                        .collect();
                    let batch = Batch::new(joins, leaves);
                    let start = Instant::now();
                    let outcome = tree.process_batch(&batch, &mut keygen);
                    let wall = start.elapsed().as_secs_f64() * 1000.0;
                    black_box(&outcome);
                    wall
                };
                best = best.min(wall);
            }
            RekeyPoint {
                n,
                joins: JOINS,
                leaves: LEAVES,
                full_message,
                wall_ms: best,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// JSON emit + check
// ---------------------------------------------------------------------------

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

fn render_json(
    mode: &str,
    enc: &EncodeReport,
    dec: &DecodeReport,
    par: &ParallelReport,
    rekey: &[RekeyPoint],
) -> String {
    let block_bytes = (ENCODE_K * PACKET_LEN) as f64;
    let mbps = |pps: f64| pps * block_bytes / 1e6;
    let speedup = if enc.before_pps > 0.0 {
        enc.after_pps / enc.before_pps
    } else {
        0.0
    };
    let rekey_json: Vec<String> = rekey
        .iter()
        .map(|p| {
            format!(
                "    {{\"n\": {}, \"joins\": {}, \"leaves\": {}, \"full_message\": {}, \"wall_ms\": {}}}",
                p.n,
                p.joins,
                p.leaves,
                p.full_message,
                fmt_f(p.wall_ms)
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"encode\": {{\n    \
         \"k\": {ENCODE_K},\n    \"packet_len\": {PACKET_LEN},\n    \"before_pps\": {},\n    \
         \"after_pps\": {},\n    \"speedup\": {},\n    \"before_mbps\": {},\n    \
         \"after_mbps\": {}\n  }},\n  \"decode\": {{\n    \"k\": {ENCODE_K},\n    \
         \"packet_len\": {PACKET_LEN},\n    \"erasures\": {},\n    \"before_ms\": {},\n    \
         \"after_ms\": {}\n  }},\n  \"parallel\": {{\n    \"blocks\": {},\n    \
         \"workers\": {},\n    \"matches_sequential\": {}\n  }},\n  \"batch_rekey\": [\n{}\n  ]\n}}\n",
        fmt_f(enc.before_pps),
        fmt_f(enc.after_pps),
        fmt_f(speedup),
        fmt_f(mbps(enc.before_pps)),
        fmt_f(mbps(enc.after_pps)),
        dec.erasures,
        fmt_f(dec.before_ms),
        fmt_f(dec.after_ms),
        par.blocks,
        par.workers,
        par.matches_sequential,
        rekey_json.join(",\n")
    )
}

/// Structural well-formedness: balanced braces/brackets outside strings,
/// non-empty, object at the top level.
fn json_well_formed(text: &str) -> bool {
    let trimmed = text.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return false;
    }
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in trimmed.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string
}

/// Validates a previously emitted `BENCH_rekey.json`. Returns a list of
/// problems (empty = valid).
fn check_report(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    if !json_well_formed(text) {
        problems.push("not a well-formed JSON object".to_string());
        return problems;
    }
    for key in [
        "\"schema\"",
        SCHEMA,
        "\"encode\"",
        "\"before_pps\"",
        "\"after_pps\"",
        "\"speedup\"",
        "\"decode\"",
        "\"parallel\"",
        "\"batch_rekey\"",
    ] {
        if !text.contains(key) {
            problems.push(format!("missing {key}"));
        }
    }
    if !text.contains("\"matches_sequential\": true") {
        problems.push("parallel encode did not match sequential".to_string());
    }
    problems
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // REKEY_QUICK shrinks the workload exactly like the figure binaries;
    // `--smoke` remains the explicit override for CI.
    let mut smoke = std::env::var("REKEY_QUICK").is_ok_and(|v| v != "0");
    let mut out_path = "BENCH_rekey.json".to_string();
    let mut check_path: Option<String> = None;
    let mut obs_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--check" => check_path = Some(it.next().expect("--check needs a path")),
            "--obs-out" => obs_out = Some(it.next().expect("--obs-out needs a path")),
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; use [--smoke] [--out PATH] [--check PATH] \
                     [--obs-out PATH] [--trace-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let obs_sink = match bench::ObsSink::resolve(obs_out) {
        Ok(sink) => sink,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };
    let trace_sink = match bench::TraceSink::resolve(trace_out) {
        Ok(sink) => sink,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };

    if let Some(path) = check_path {
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("BENCH check FAILED: cannot read {path}");
            std::process::exit(1);
        };
        let problems = check_report(&text);
        if problems.is_empty() {
            println!("BENCH check ok: {path}");
            return;
        }
        for p in &problems {
            eprintln!("BENCH check FAILED: {p}");
        }
        std::process::exit(1);
    }

    let effort = if smoke {
        Effort::smoke()
    } else {
        Effort::full()
    };
    let mode = if smoke { "smoke" } else { "full" };

    eprintln!("encode: k={ENCODE_K} len={PACKET_LEN} ({mode})");
    let enc = bench_encode(effort);
    eprintln!(
        "  before {:.0} pps, after {:.0} pps, speedup {:.2}x",
        enc.before_pps,
        enc.after_pps,
        enc.after_pps / enc.before_pps.max(1e-9)
    );
    eprintln!("decode: k={ENCODE_K} half erased");
    let dec = bench_decode(effort);
    eprintln!(
        "  before {:.3} ms, after {:.3} ms",
        dec.before_ms, dec.after_ms
    );
    eprintln!("parallel: encode identity check");
    let par = bench_parallel();
    eprintln!(
        "  {} blocks, {} workers, matches_sequential={}",
        par.blocks, par.workers, par.matches_sequential
    );
    eprintln!("batch_rekey: N in {{2^10, 2^14, 2^17}}");
    trace_sink.start();
    let rekey = bench_batch_rekey(effort);
    trace_sink
        .finish(&mut std::io::stderr().lock())
        .expect("write trace JSON");
    for p in &rekey {
        eprintln!("  N={:<7} wall {:.2} ms", p.n, p.wall_ms);
    }

    let json = render_json(mode, &enc, &dec, &par, &rekey);
    std::fs::write(&out_path, &json).expect("write BENCH_rekey.json");
    println!("wrote {out_path}");
    if obs_sink.active() {
        let snap = obs::snapshot();
        obs_sink
            .emit(&snap, &mut std::io::stderr().lock())
            .expect("write obs snapshot");
        if let Some(path) = &obs_sink.path {
            eprintln!("wrote obs snapshot to {path}");
        }
    }
    if !par.matches_sequential {
        eprintln!("FAILED: parallel schedule differs from sequential");
        std::process::exit(1);
    }
}
