//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() {
    bench::figures::sigcomm_degree(bench::Mode::from_env());
}
