//! Bench regression sentinel: compares a freshly generated `BENCH_*.json`
//! against a committed baseline and emits a machine-readable verdict.
//!
//! The two reports are flattened into `(path, leaf)` rows. Objects that
//! carry identity keys (`n`, `d`, `joins`, `kind`, `workers`, …) get a
//! sorted `[k=v,…]` coordinate appended to their path instead of a
//! positional index, so a row matches its counterpart by *what it
//! measured*, not by where it sat in an array — a smoke-mode grid and a
//! full-mode grid intersect exactly on the cells they share, and cells
//! unique to one side are counted (`only_baseline` / `only_candidate`)
//! but never fail the diff.
//!
//! Matched leaves compare under one of two rules, chosen by key name:
//!
//! * **band** — timing/throughput keys (`*_ms`, `*_ns`, `*_pct`,
//!   `*_pps`, `*_mbps`, or containing `wall`/`speedup`/`overhead`/
//!   `per_sec`/`busy`): fail only when the candidate has *worsened*
//!   past a multiplicative band (default 3×, `--band` overrides) plus
//!   an absolute floor of 1.0 that keeps sub-unit measurements from
//!   failing on noise. Worsening reads in the key's regression
//!   direction — latency (`*_ms`/`*_ns`) may grow to `band × baseline`,
//!   throughput/speedup may shrink to `baseline / band`. Improvements
//!   never fail — they are counted (`improved`) so a stale baseline is
//!   visible without blocking CI.
//! * **exact** — everything else (counts, digests, byte totals, booleans,
//!   schema strings): any difference is a failure. These are the
//!   determinism sentinels — a changed `digest` or `bytes_on_wire_total`
//!   means the datapath's output changed, not its speed.
//!
//! `mode` and the documented-jitter keys (`overlapped`, `overlap_pct`)
//! are ignored. The verdict JSON (`bench_diff/v1`) lists every failure
//! with its rule and both values; `--check` turns failures into a
//! non-zero exit for CI.
//!
//! Flags: `--baseline PATH --candidate PATH [--out PATH] [--band RATIO]
//! [--check]`.

use bench::jsonv::{parse, Value};

const SCHEMA: &str = "bench_diff/v1";
const DEFAULT_BAND: f64 = 3.0;
const ABS_FLOOR: f64 = 1.0;

/// Scalar fields that identify a row rather than measure it: they become
/// path coordinates and are excluded from leaf comparison.
const ID_KEYS: [&str; 14] = [
    "kind",
    "n",
    "d",
    "joins",
    "leaves",
    "compaction",
    "workers",
    "intervals",
    "name",
    "figure",
    "id",
    "k",
    "packet_len",
    "erasures",
];

/// Keys excluded from comparison entirely: `mode` distinguishes smoke
/// from full on purpose, and the overlap columns are documented in
/// `bench_scale` as scheduling jitter, not gated properties.
const IGNORED_KEYS: [&str; 3] = ["mode", "overlapped", "overlap_pct"];

#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl Leaf {
    fn render(&self) -> String {
        match self {
            Leaf::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{n:.0}")
                } else {
                    format!("{n}")
                }
            }
            Leaf::Str(s) => s.clone(),
            Leaf::Bool(b) => b.to_string(),
            Leaf::Null => "null".to_string(),
        }
    }
}

fn scalar(value: &Value) -> Option<Leaf> {
    match value {
        Value::Num(n) => Some(Leaf::Num(*n)),
        Value::Str(s) => Some(Leaf::Str(s.clone())),
        Value::Bool(b) => Some(Leaf::Bool(*b)),
        Value::Null => Some(Leaf::Null),
        Value::Arr(_) | Value::Obj(_) => None,
    }
}

/// The `[k=v,…]` coordinate for an object, from its scalar identity
/// fields, sorted by key so source order never affects matching.
fn coordinate(fields: &[(String, Value)]) -> String {
    let mut ids: Vec<(String, String)> = fields
        .iter()
        .filter(|(k, _)| ID_KEYS.contains(&k.as_str()))
        .filter_map(|(k, v)| scalar(v).map(|leaf| (k.clone(), leaf.render())))
        .collect();
    if ids.is_empty() {
        return String::new();
    }
    ids.sort();
    let parts: Vec<String> = ids.into_iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("[{}]", parts.join(","))
}

fn flatten(value: &Value, path: &str, rows: &mut Vec<(String, Leaf)>) {
    match value {
        Value::Obj(fields) => {
            let here = format!("{path}{}", coordinate(fields));
            for (key, child) in fields {
                if IGNORED_KEYS.contains(&key.as_str()) {
                    continue;
                }
                if ID_KEYS.contains(&key.as_str()) && scalar(child).is_some() {
                    continue; // consumed as a coordinate
                }
                let child_path = if here.is_empty() {
                    key.clone()
                } else {
                    format!("{here}.{key}")
                };
                flatten(child, &child_path, rows);
            }
        }
        Value::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                // Rows with identity coordinates match by coordinate, not
                // position; everything else keeps its index.
                let coordinated =
                    matches!(item, Value::Obj(fields) if !coordinate(fields).is_empty());
                let child_path = if coordinated {
                    path.to_string()
                } else {
                    format!("{path}[{i}]")
                };
                flatten(item, &child_path, rows);
            }
        }
        _ => {
            if let Some(leaf) = scalar(value) {
                rows.push((path.to_string(), leaf));
            }
        }
    }
}

/// How the regression direction reads for a timing/throughput key:
/// `Some(true)` when higher is better (throughput, speedup),
/// `Some(false)` when lower is better (latency, overhead), `None` for
/// deterministic keys that compare exactly.
fn timing_direction(path: &str) -> Option<bool> {
    let key = path.rsplit('.').next().unwrap_or(path);
    let key = key.split('[').next().unwrap_or(key);
    const HIGHER: [&str; 4] = ["_pps", "_mbps", "per_sec", "speedup"];
    const LOWER_SUFFIX: [&str; 3] = ["_ms", "_ns", "_pct"];
    const LOWER_MARKER: [&str; 3] = ["wall", "overhead", "busy"];
    if HIGHER.iter().any(|m| key.ends_with(m) || key.contains(m)) {
        return Some(true);
    }
    if LOWER_SUFFIX.iter().any(|s| key.ends_with(s)) || LOWER_MARKER.iter().any(|m| key.contains(m))
    {
        return Some(false);
    }
    None
}

/// Whether `cand` regressed past the band against `base` in the key's
/// direction. The bound is the multiplicative ratio — latency may grow
/// to `band × base`, throughput may shrink to `base / band` — plus the
/// absolute floor, expressed additively so a negative baseline
/// (e.g. a negative `overhead_pct`) still gets a sane allowance.
fn regressed(base: f64, cand: f64, higher_is_better: bool, band: f64) -> bool {
    if higher_is_better {
        base - cand > ABS_FLOOR + (band - 1.0) / band * base.abs()
    } else {
        cand - base > ABS_FLOOR + (band - 1.0) * base.abs()
    }
}

struct Failure {
    path: String,
    rule: &'static str,
    baseline: Leaf,
    candidate: Leaf,
}

struct Diff {
    compared: usize,
    matched: usize,
    /// Banded rows where the candidate beat the baseline by more than
    /// the band — the baseline is stale, not broken.
    improved: usize,
    only_baseline: usize,
    only_candidate: usize,
    failures: Vec<Failure>,
}

fn diff(baseline: &Value, candidate: &Value, band: f64) -> Diff {
    let mut base_rows = Vec::new();
    let mut cand_rows = Vec::new();
    flatten(baseline, "", &mut base_rows);
    flatten(candidate, "", &mut cand_rows);

    let mut consumed = vec![false; cand_rows.len()];
    let mut compared = 0usize;
    let mut matched = 0usize;
    let mut improved = 0usize;
    let mut failures = Vec::new();
    for (path, base_leaf) in &base_rows {
        let found = cand_rows
            .iter()
            .enumerate()
            .find(|(i, (p, _))| !consumed[*i] && p == path);
        let Some((idx, (_, cand_leaf))) = found else {
            continue;
        };
        consumed[idx] = true;
        compared += 1;
        let banded = match (base_leaf, cand_leaf) {
            (Leaf::Num(a), Leaf::Num(b)) => timing_direction(path).map(|dir| (*a, *b, dir)),
            _ => None,
        };
        let (rule, ok) = match banded {
            Some((a, b, higher_is_better)) => {
                // An improvement past the band is the regression check
                // with the roles swapped: the baseline is stale.
                if regressed(b, a, higher_is_better, band) {
                    improved += 1;
                }
                ("band", !regressed(a, b, higher_is_better, band))
            }
            None => ("exact", base_leaf == cand_leaf),
        };
        if ok {
            matched += 1;
        } else {
            failures.push(Failure {
                path: path.clone(),
                rule,
                baseline: base_leaf.clone(),
                candidate: cand_leaf.clone(),
            });
        }
    }
    let only_candidate = consumed.iter().filter(|c| !**c).count();
    Diff {
        compared,
        matched,
        improved,
        only_baseline: base_rows.len() - compared,
        only_candidate,
        failures,
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_verdict(d: &Diff, baseline: &str, candidate: &str, band: f64) -> String {
    let failures: Vec<String> = d
        .failures
        .iter()
        .map(|f| {
            format!(
                "    {{\"path\": \"{}\", \"rule\": \"{}\", \"baseline\": \"{}\", \
                 \"candidate\": \"{}\"}}",
                escape(&f.path),
                f.rule,
                escape(&f.baseline.render()),
                escape(&f.candidate.render()),
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"baseline\": \"{}\",\n  \
         \"candidate\": \"{}\",\n  \"band\": {band:.1},\n  \"compared\": {},\n  \
         \"matched\": {},\n  \"improved\": {},\n  \"only_baseline\": {},\n  \
         \"only_candidate\": {},\n  \
         \"failures\": [\n{}\n  ],\n  \"verdict\": \"{}\"\n}}\n",
        escape(baseline),
        escape(candidate),
        d.compared,
        d.matched,
        d.improved,
        d.only_baseline,
        d.only_candidate,
        failures.join(",\n"),
        if d.failures.is_empty() {
            "pass"
        } else {
            "fail"
        },
    )
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(1);
    });
    parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_diff: {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<String> = None;
    let mut candidate: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut band = DEFAULT_BAND;
    let mut check = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(it.next().expect("--baseline needs a path")),
            "--candidate" => candidate = Some(it.next().expect("--candidate needs a path")),
            "--out" => out_path = Some(it.next().expect("--out needs a path")),
            "--band" => {
                band = it
                    .next()
                    .expect("--band needs a ratio")
                    .parse()
                    .expect("--band must be a number >= 1");
            }
            "--check" => check = true,
            other => {
                eprintln!(
                    "unknown flag {other}; use --baseline PATH --candidate PATH \
                     [--out PATH] [--band RATIO] [--check]"
                );
                std::process::exit(2);
            }
        }
    }
    let (Some(base_path), Some(cand_path)) = (baseline, candidate) else {
        eprintln!("bench_diff: --baseline and --candidate are both required");
        std::process::exit(2);
    };
    if band < 1.0 {
        eprintln!("bench_diff: --band must be >= 1");
        std::process::exit(2);
    }

    let base = load(&base_path);
    let cand = load(&cand_path);
    let d = diff(&base, &cand, band);
    let verdict = render_verdict(&d, &base_path, &cand_path, band);
    if let Some(path) = &out_path {
        std::fs::write(path, &verdict).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot write {path}: {e}");
            std::process::exit(1);
        });
    }

    eprintln!(
        "bench_diff: {} vs {}: {} compared, {} matched, {} improved, {} failures \
         ({} baseline-only, {} candidate-only rows)",
        base_path,
        cand_path,
        d.compared,
        d.matched,
        d.improved,
        d.failures.len(),
        d.only_baseline,
        d.only_candidate,
    );
    for f in &d.failures {
        eprintln!(
            "  FAIL [{}] {}: baseline {} vs candidate {}",
            f.rule,
            f.path,
            f.baseline.render(),
            f.candidate.render(),
        );
    }
    if out_path.is_none() {
        print!("{verdict}");
    } else {
        println!(
            "bench_diff verdict: {}",
            if d.failures.is_empty() {
                "pass"
            } else {
                "fail"
            }
        );
    }
    if check && !d.failures.is_empty() {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(text: &str) -> Vec<(String, Leaf)> {
        let mut out = Vec::new();
        flatten(&parse(text).expect("parse"), "", &mut out);
        out
    }

    #[test]
    fn coordinates_replace_indices_for_identified_rows() {
        let got = rows(
            "{\"scale\": [{\"n\": 4, \"d\": 2, \"wall_ms\": 1.0}, \
             {\"n\": 8, \"d\": 2, \"wall_ms\": 2.0}]}",
        );
        let paths: Vec<&str> = got.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            vec!["scale[d=2,n=4].wall_ms", "scale[d=2,n=8].wall_ms"]
        );
    }

    #[test]
    fn plain_arrays_keep_indices_and_ignored_keys_vanish() {
        let got = rows("{\"mode\": \"full\", \"xs\": [1, 2], \"overlap_pct\": 50.0}");
        let paths: Vec<&str> = got.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["xs[0]", "xs[1]"]);
    }

    #[test]
    fn band_rule_fails_only_on_regressions() {
        let slow_ok = |base: f64, cand: f64| !regressed(base, cand, false, 3.0);
        // Latency: 3x slower passes (plus the floor), beyond fails,
        // faster is always free.
        assert!(slow_ok(10.0, 30.0));
        assert!(!slow_ok(10.0, 35.0));
        assert!(slow_ok(10.0, 0.001));
        // Sub-unit noise rides the absolute floor.
        assert!(slow_ok(0.001, 0.9));
        // Sign-safe: a negative overhead drifting positive.
        assert!(slow_ok(-0.4, 0.4));
        // Throughput: lower is the regression direction, bounded at
        // base / band (a 3x drop passes, an 11x drop fails).
        let fast_ok = |base: f64, cand: f64| !regressed(base, cand, true, 3.0);
        assert!(fast_ok(9000.0, 3000.0));
        assert!(!fast_ok(9000.0, 800.0));
        assert!(fast_ok(9000.0, 90000.0));
    }

    #[test]
    fn timing_keys_classify_by_suffix_and_marker() {
        for (key, higher) in [
            ("a.wall_ms", false),
            ("b[n=4].seal_enc_per_sec", true),
            ("speedup", true),
            ("batch_wall_ms_mean", false),
            ("mint_busy_ns", false),
            ("overhead_pct", false),
            ("encode.after_pps", true),
        ] {
            assert_eq!(timing_direction(key), Some(higher), "{key}");
        }
        for key in ["digest", "bytes_on_wire_total", "encryptions", "schema"] {
            assert_eq!(timing_direction(key), None, "{key} should compare exactly");
        }
    }

    #[test]
    fn diff_flags_exact_mismatches_and_tolerates_banded_drift() {
        let base = parse(
            "{\"schema\": \"x/v1\", \"rows\": [{\"n\": 4, \"digest\": \"abc\", \
             \"wall_ms\": 10.0}]}",
        )
        .expect("parse");
        let cand = parse(
            "{\"schema\": \"x/v1\", \"rows\": [{\"n\": 4, \"digest\": \"abd\", \
             \"wall_ms\": 25.0}]}",
        )
        .expect("parse");
        let d = diff(&base, &cand, 3.0);
        assert_eq!(d.compared, 3);
        assert_eq!(d.failures.len(), 1);
        assert_eq!(d.failures[0].path, "rows[n=4].digest");
        assert_eq!(d.failures[0].rule, "exact");
    }

    #[test]
    fn disjoint_grids_count_as_unmatched_not_failed() {
        let base = parse("{\"rows\": [{\"n\": 4, \"wall_ms\": 1.0}]}").expect("parse");
        let cand = parse("{\"rows\": [{\"n\": 8, \"wall_ms\": 9.0}]}").expect("parse");
        let d = diff(&base, &cand, 3.0);
        assert_eq!(d.compared, 0);
        assert_eq!(d.only_baseline, 1);
        assert_eq!(d.only_candidate, 1);
        assert!(d.failures.is_empty());
    }
}
