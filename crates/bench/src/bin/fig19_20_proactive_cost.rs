//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() {
    bench::figures::fig19_20(bench::Mode::from_env());
}
