//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() {
    bench::figures::fig10(bench::Mode::from_env());
}
