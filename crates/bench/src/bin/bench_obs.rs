//! Observability-overhead benchmark: emits `BENCH_obs.json`.
//!
//! Answers the question the flight recorder raises: what does recording
//! cost? The acceptance cell (N = 2^20, d = 8, J = L = 64; N = 2^12
//! under `--smoke`) runs legs of eight consecutive streamed rekey
//! builds (`rekeymsg::stream`) — recorder off, then recorder on —
//! interleaved so thermal/cache drift hits both legs equally, taking
//! the min leg wall over reps for each side. A single build is ~1.5 ms
//! on the reference container, small enough that a percentage gate on
//! one build is scheduling noise; the eight-build leg amortises it.
//! Alongside the overhead it cross-validates the pipeline-overlap
//! accounting two independent ways:
//!
//! * `stats_overlap_ns` — `StreamStats::overlap_ns`, the stopwatch
//!   windows measured inside `plan_and_seal_streamed` itself;
//! * `event_window_overlap_ns` — the same three-window inclusion–
//!   exclusion recomputed from the recorder's event stream (the
//!   `pipe.mint_resolve` / `stage.seal` / `stage.plan` spans mirror the
//!   producer/seal/plan windows exactly);
//! * `event_union_overlap_ns` — the exact interval-union overlap over
//!   the full per-stage span lists, which the window approximation can
//!   only overstate.
//!
//! `agreement_pct_of_wall` is |event − stats| as a percentage of the
//! build wall; the acceptance bound is ≤ 1%. The recorder's off path is
//! additionally pinned at exactly zero allocations (`off_path_allocs`,
//! counted by the `xcheck_rt::CountingAlloc` global allocator over a
//! span+instant hammer with recording disarmed).
//!
//! Flags: `--smoke` shrinks the cell; `--out PATH` overrides the output
//! path; `--check PATH` validates an existing report (gates: overhead
//! ≤ 5% and agreement ≤ 1% in full mode, `off_path_allocs == 0`
//! always); `--trace-out PATH` additionally writes the best
//! recorder-on rep's Chrome trace-event JSON. Measurement requires a
//! build with `--features obs`; `--check` works on any build.

use std::hint::black_box;
use std::time::Instant;

use keytree::{Batch, CompactionPolicy, KeyTree, MarkScratch, MemberId};
use rekeymsg::{Layout, StreamStats, StreamTuning};
use wirecrypto::{KeyGen, SymKey};
use xcheck_rt::CountingAlloc;

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

const SCHEMA: &str = "bench_obs/v1";
const WORKERS: usize = 2;
const OVERHEAD_BOUND_PCT: f64 = 5.0;
const AGREEMENT_BOUND_PCT: f64 = 1.0;

/// Same tuning as `bench_scale`'s pipeline section: barrier-sized chunks,
/// a channel deep enough that minting never stalls behind planning.
const PIPE_TUNING: StreamTuning = StreamTuning {
    chunk_edges: rekeymsg::SEAL_CHUNK,
    channel_capacity: 512,
};

/// The stage spans whose event streams mirror the `StreamStats` windows.
const OVERLAP_SPANS: [&str; 3] = ["pipe.mint_resolve", "stage.seal", "stage.plan"];

#[derive(Clone, Copy)]
struct Cell {
    n: u32,
    d: u32,
    joins: usize,
    leaves: usize,
}

fn acceptance_cell(smoke: bool) -> Cell {
    Cell {
        n: if smoke { 1 << 12 } else { 1 << 20 },
        d: 8,
        joins: 64,
        leaves: 64,
    }
}

fn make_batch(cell: Cell, keygen: &mut KeyGen) -> Batch {
    let n = cell.n;
    let stride = (n / (2 * cell.leaves.max(1)) as u32).max(1);
    let leaves: Vec<MemberId> = (0..cell.leaves as u32).map(|i| (i * stride) % n).collect();
    let joins: Vec<(MemberId, SymKey)> = (0..cell.joins as u32)
        .map(|i| (n + i, keygen.next_key()))
        .collect();
    Batch::new(joins, leaves)
}

/// One streamed rekey build over a fresh copy of `base`, timed end to end
/// (marking + mint + plan + seal, the same datapath `bench_scale` rows
/// time). Returns the wall in milliseconds and the pipeline's own stats.
fn run_rep(
    base: &KeyTree,
    keygen: &KeyGen,
    cell: Cell,
    tree: &mut KeyTree,
    scratch: &mut MarkScratch,
) -> (f64, StreamStats) {
    tree.clone_from(base);
    let mut kg = keygen.clone();
    let batch = make_batch(cell, &mut kg);
    let start = Instant::now();
    let (outcome, pending) =
        tree.process_batch_deferred_in(batch, &mut kg, scratch, &CompactionPolicy::DISABLED);
    let (derived, built) = rekeymsg::stream::plan_and_seal_streamed(
        tree,
        &outcome,
        &pending,
        1,
        &Layout::DEFAULT,
        PIPE_TUNING,
    );
    tree.install_minted(&outcome.updated_knodes, &derived);
    let (plans, sealed, stats) =
        built.unwrap_or_else(|e| unreachable!("wide build has no wire cap: {e}"));
    let wall = start.elapsed().as_secs_f64() * 1000.0;
    black_box((&plans, &sealed));
    (wall, stats)
}

struct Measurement {
    recorder_off_ms: f64,
    recorder_on_ms: f64,
    stats: StreamStats,
    trace: obs::trace::Trace,
}

/// Builds summed into one timed leg; ~12 ms of work per leg on the
/// reference container, large enough to amortise scheduler spikes that
/// swamp a single ~1.5 ms build.
const LEG_BUILDS: usize = 8;

/// Single recorder-on builds run after the timing loop to source the
/// overlap cross-check pair.
const XCHECK_REPS: usize = 8;

/// Interleaved off/on legs (of `LEG_BUILDS` builds each) under `WORKERS`
/// pipeline workers; min leg wall per side, reported per build. The
/// trace and stats for the overlap cross-check come from a separate loop
/// of single recorder-on builds, keeping the pair with the largest
/// `StreamStats::overlap_ns` — trace and stats must describe the same
/// build for the check to be honest, and the build with the most
/// producer/worker interleaving stresses the two accountings hardest (on
/// one core the *fastest* build is typically the sequential schedule,
/// where both trivially report zero).
fn measure(cell: Cell, reps: usize) -> Measurement {
    let mut keygen = KeyGen::from_seed(0x0B5E_0B5E_u64);
    let base = KeyTree::balanced(cell.n, cell.d, &mut keygen);
    let mut tree = base.clone();
    let mut scratch = MarkScratch::new();

    taskpool::with_workers(WORKERS, || {
        // One untimed warm-up per leg: first-touch page faults, span-name
        // interning, and ring claiming all happen here, not on the clock.
        let _ = run_rep(&base, &keygen, cell, &mut tree, &mut scratch);
        obs::trace::enable(obs::trace::DEFAULT_CAPACITY);
        let _ = run_rep(&base, &keygen, cell, &mut tree, &mut scratch);
        obs::trace::disable();
        obs::trace::clear();

        let mut off_best = f64::INFINITY;
        let mut on_best = f64::INFINITY;
        for _ in 0..reps {
            let mut off_leg = 0.0;
            for _ in 0..LEG_BUILDS {
                off_leg += run_rep(&base, &keygen, cell, &mut tree, &mut scratch).0;
            }
            off_best = off_best.min(off_leg);

            obs::trace::enable(obs::trace::DEFAULT_CAPACITY);
            let mut on_leg = 0.0;
            for _ in 0..LEG_BUILDS {
                on_leg += run_rep(&base, &keygen, cell, &mut tree, &mut scratch).0;
            }
            obs::trace::disable();
            obs::trace::clear();
            on_best = on_best.min(on_leg);
        }

        let mut best_stats = StreamStats::default();
        let mut best_trace = obs::trace::Trace::default();
        let mut have_pair = false;
        for _ in 0..XCHECK_REPS {
            obs::trace::enable(obs::trace::DEFAULT_CAPACITY);
            let (_, stats) = run_rep(&base, &keygen, cell, &mut tree, &mut scratch);
            obs::trace::disable();
            let trace = obs::trace::drain();
            obs::trace::clear();
            if !have_pair || stats.overlap_ns > best_stats.overlap_ns {
                have_pair = true;
                best_stats = stats;
                best_trace = trace;
            }
        }
        Measurement {
            recorder_off_ms: off_best / LEG_BUILDS as f64,
            recorder_on_ms: on_best / LEG_BUILDS as f64,
            stats: best_stats,
            trace: best_trace,
        }
    })
}

/// Allocations made by the recorder surface — span begin/end pairs plus
/// instants — while recording is disarmed. The contract is exactly zero:
/// a disarmed recorder must be free. Warm-up happens first so one-time
/// interning never pollutes the count.
fn count_off_path_allocs() -> u64 {
    let hammer = |rounds: usize| {
        for _ in 0..rounds {
            let _outer = obs::span("bench.obs.off_path");
            let _inner = obs::span("bench.obs.off_path.inner");
            obs::trace::instant("bench.obs.off_path.mark");
        }
    };
    hammer(8);
    let (allocs, ()) = xcheck_rt::count_in(|| hammer(4096));
    allocs
}

struct Report {
    mode: &'static str,
    cell: Cell,
    reps: usize,
    measurement: Measurement,
    off_path_allocs: u64,
    event_window_overlap_ns: u64,
    event_union_overlap_ns: u64,
}

impl Report {
    fn overhead_pct(&self) -> f64 {
        if self.measurement.recorder_off_ms > 0.0 {
            100.0 * (self.measurement.recorder_on_ms - self.measurement.recorder_off_ms)
                / self.measurement.recorder_off_ms
        } else {
            0.0
        }
    }

    fn agreement_pct_of_wall(&self) -> f64 {
        let wall = self.measurement.stats.wall_ns;
        if wall == 0 {
            return 0.0;
        }
        let diff = self
            .event_window_overlap_ns
            .abs_diff(self.measurement.stats.overlap_ns);
        100.0 * diff as f64 / wall as f64
    }

    fn to_json(&self) -> String {
        let m = &self.measurement;
        format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{}\",\n  \
             \"cell\": {{\"n\": {}, \"d\": {}, \"joins\": {}, \"leaves\": {}}},\n  \
             \"workers\": {WORKERS},\n  \"reps\": {},\n  \
             \"recorder_off_ms\": {},\n  \"recorder_on_ms\": {},\n  \"overhead_pct\": {},\n  \
             \"off_path_allocs\": {},\n  \
             \"events\": {},\n  \"tracks\": {},\n  \"dropped\": {},\n  \
             \"wall_ns\": {},\n  \"stats_overlap_ns\": {},\n  \
             \"event_window_overlap_ns\": {},\n  \"event_union_overlap_ns\": {},\n  \
             \"agreement_pct_of_wall\": {}\n}}\n",
            self.mode,
            self.cell.n,
            self.cell.d,
            self.cell.joins,
            self.cell.leaves,
            self.reps,
            fmt_f(m.recorder_off_ms),
            fmt_f(m.recorder_on_ms),
            fmt_f(self.overhead_pct()),
            self.off_path_allocs,
            m.trace.events.len(),
            m.trace.tracks.len(),
            m.trace.dropped_total(),
            m.stats.wall_ns,
            m.stats.overlap_ns,
            self.event_window_overlap_ns,
            self.event_union_overlap_ns,
            fmt_f(self.agreement_pct_of_wall()),
        )
    }
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

/// Validates a previously emitted `BENCH_obs.json` against the acceptance
/// gates. Returns a list of problems (empty = valid).
fn check_report(text: &str) -> Vec<String> {
    use bench::jsonv::{parse, Value};
    let mut problems = Vec::new();
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return vec![e],
    };
    if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        problems.push(format!("schema is not {SCHEMA}"));
    }
    let num = |key: &str| doc.get(key).and_then(Value::as_f64);
    let full = doc.get("mode").and_then(Value::as_str) == Some("full");
    match num("off_path_allocs") {
        Some(0.0) => {}
        Some(n) => problems.push(format!("off_path_allocs = {n}, want exactly 0")),
        None => problems.push("missing off_path_allocs".to_string()),
    }
    match num("tracks") {
        Some(t) if t >= WORKERS as f64 => {}
        Some(t) => problems.push(format!("only {t} tracks recorded, want >= {WORKERS}")),
        None => problems.push("missing tracks".to_string()),
    }
    match num("dropped") {
        Some(0.0) => {}
        Some(n) => problems.push(format!("{n} events dropped; rings undersized for the cell")),
        None => problems.push("missing dropped".to_string()),
    }
    // The timing gates bind only in full mode: the smoke cell's sub-ms
    // walls make percentages pure scheduling noise.
    if full {
        match num("overhead_pct") {
            Some(p) if p <= OVERHEAD_BOUND_PCT => {}
            Some(p) => problems.push(format!(
                "recorder overhead {p:.3}% exceeds the {OVERHEAD_BOUND_PCT}% bound"
            )),
            None => problems.push("missing overhead_pct".to_string()),
        }
        match num("agreement_pct_of_wall") {
            Some(p) if p <= AGREEMENT_BOUND_PCT => {}
            Some(p) => problems.push(format!(
                "event/stats overlap disagreement {p:.3}% of wall exceeds \
                 the {AGREEMENT_BOUND_PCT}% bound"
            )),
            None => problems.push("missing agreement_pct_of_wall".to_string()),
        }
    }
    problems
}

fn main() {
    xcheck_rt::assert_counting();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = std::env::var("REKEY_QUICK").is_ok_and(|v| v != "0");
    let mut out_path = "BENCH_obs.json".to_string();
    let mut check_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--check" => check_path = Some(it.next().expect("--check needs a path")),
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; use [--smoke] [--out PATH] [--check PATH] \
                     [--trace-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("BENCH check FAILED: cannot read {path}");
            std::process::exit(1);
        };
        let problems = check_report(&text);
        if problems.is_empty() {
            println!("BENCH check ok: {path}");
            return;
        }
        for p in &problems {
            eprintln!("BENCH check FAILED: {p}");
        }
        std::process::exit(1);
    }

    if !obs::enabled() {
        eprintln!(
            "bench_obs measures the flight recorder, which this binary was built without; \
             rebuild with `--features obs`"
        );
        std::process::exit(1);
    }

    let mode = if smoke { "smoke" } else { "full" };
    let reps = if smoke { 2 } else { 12 };
    let cell = acceptance_cell(smoke);
    eprintln!(
        "obs overhead: N=2^{} d={} J={} L={} workers={WORKERS} ({mode})",
        cell.n.trailing_zeros(),
        cell.d,
        cell.joins,
        cell.leaves
    );

    let off_path_allocs = count_off_path_allocs();
    let measurement = measure(cell, reps);

    // Two event-derived overlap figures from the best recorder-on rep:
    // single [first, last] windows per stage (mirrors the StreamStats
    // stopwatch exactly) and the exact union over every span interval.
    let windows: Vec<Vec<(u64, u64)>> = OVERLAP_SPANS
        .iter()
        .map(|name| measurement.trace.span_window(name).into_iter().collect())
        .collect();
    let intervals: Vec<Vec<(u64, u64)>> = OVERLAP_SPANS
        .iter()
        .map(|name| measurement.trace.span_intervals(name))
        .collect();
    let report = Report {
        mode,
        cell,
        reps,
        off_path_allocs,
        event_window_overlap_ns: obs::trace::multi_stage_overlap_ns(&windows),
        event_union_overlap_ns: obs::trace::multi_stage_overlap_ns(&intervals),
        measurement,
    };

    let m = &report.measurement;
    eprintln!(
        "  recorder off {:>8.3} ms, on {:>8.3} ms ({:+.2}%), {} events on {} tracks, {} dropped",
        m.recorder_off_ms,
        m.recorder_on_ms,
        report.overhead_pct(),
        m.trace.events.len(),
        m.trace.tracks.len(),
        m.trace.dropped_total(),
    );
    eprintln!(
        "  overlap: stats {:>12} ns, event-window {:>12} ns, event-union {:>12} ns \
         (disagreement {:.3}% of {:.3} ms wall)",
        m.stats.overlap_ns,
        report.event_window_overlap_ns,
        report.event_union_overlap_ns,
        report.agreement_pct_of_wall(),
        m.stats.wall_ns as f64 / 1e6,
    );
    eprintln!("  off-path allocations over 4096 span+instant rounds: {off_path_allocs}");

    if let Some(path) = &trace_out {
        std::fs::write(path, report.measurement.trace.to_chrome_json()).expect("write trace JSON");
        eprintln!("wrote trace to {path}");
    }
    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write BENCH_obs.json");
    println!("wrote {out_path}");

    // Self-check the fresh report with the same gates `--check` applies,
    // so a regression fails the generating run, not just later CI.
    let problems = check_report(&json);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("FAILED: {p}");
        }
        std::process::exit(1);
    }
}
