//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() {
    bench::figures::fig15(bench::Mode::from_env());
}
