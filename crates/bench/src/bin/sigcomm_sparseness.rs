//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() {
    bench::figures::sigcomm_sparseness(bench::Mode::from_env());
}
