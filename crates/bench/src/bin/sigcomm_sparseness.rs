//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() -> std::io::Result<()> {
    bench::figures::sigcomm_sparseness(bench::Mode::from_env(), &mut std::io::stdout().lock())
}
