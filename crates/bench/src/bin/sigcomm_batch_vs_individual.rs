//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() {
    bench::figures::sigcomm_batch(bench::Mode::from_env());
}
