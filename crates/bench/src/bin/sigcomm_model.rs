//! Closed-form expected-message-size model vs the marking algorithm.
fn main() {
    bench::figures::sigcomm_model(bench::Mode::from_env());
}
