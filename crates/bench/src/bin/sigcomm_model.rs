//! Closed-form expected-message-size model vs the marking algorithm.
fn main() -> std::io::Result<()> {
    bench::figures::sigcomm_model(bench::Mode::from_env(), &mut std::io::stdout().lock())
}
