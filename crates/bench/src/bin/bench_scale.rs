//! Scale benchmark of the rekey pipeline: emits `BENCH_scale.json`.
//!
//! Sweeps the server-cost axes of the paper one decade past its largest
//! group — N ∈ {2^14, 2^17, 2^20} × d ∈ {4, 8, 16} × (J, L) ∈
//! {(64, 64), (512, 512)} — and records per cell:
//!
//! * `marking_ms` — wall time of one `process_batch_in` call (tree
//!   update, relabelling, fresh-key minting) on a pre-built tree;
//! * `seal_enc_per_sec` — raw sealing throughput over the batch's
//!   encryption edges (`SealedKey::seal` under the child key with the
//!   message-bound context), the cryptographic core of message build;
//! * `message_build_ms` — message build wall time at every N: the full
//!   `UkaAssignment::build` where the 16-bit wire IDs permit a real
//!   message (N = 2^14), the wide build (`plan_and_seal`: UKA plans plus
//!   every sealed encryption, all of the message except the 16-bit
//!   packet serialization) beyond;
//! * `plan_ms` — the UKA planning stage alone (warm-scratch
//!   `rekeymsg::plan_in`), split out of `message_build_ms`; the
//!   run-aggregated planner keeps it O(E) at every N;
//! * `resident_bytes_per_node` — SoA heap bytes over storage slots, next
//!   to the AoS-equivalent bytes the pre-rewrite `Vec<Node>` + member
//!   `HashMap` layout would hold.
//!
//! The `identity` section replays the N = 2^20, d = 8, J = L = 64 cell
//! under 1 and 4 workers and requires bit-identical marking outcomes and
//! sealed bytes — the gate is identity, not speedup, so it holds on a
//! single-core container.
//!
//! The `pipeline` section runs the same acceptance cell through the
//! streaming build (`rekeymsg::stream`) at 1, 2 and 4 workers against the
//! one-worker barrier baseline, recording per-stage busy time and the
//! measured stage overlap (`overlap_pct`: how much of the wall two or
//! more stages were concurrently in flight). Identity of the sealed
//! bytes is asserted per row; `overlapped` flags a workers ≥ 2 row whose
//! overlap is positive. With the run-aggregated planner the whole build
//! is ~1 ms, so overlap is informational (scheduling jitter), not gated.
//!
//! Flags: `--smoke` shrinks the grid (same JSON shape); `--check <path>`
//! validates an existing report; `--out <path>` overrides the output
//! path; `--obs-out <path>` (or `REKEY_OBS=1`) collects a per-stage
//! metrics snapshot over the acceptance cell — the largest N in the grid
//! — resetting the registry between cells so the snapshot covers exactly
//! that workload. It writes `{"schema": "obs_scale/v1", ..}` JSON
//! embedding the snapshot plus a stage-coverage percentage (how much of
//! the measured batch wall time the mark/mint/seal/encode spans account
//! for), prints the per-stage table to stderr, and requires a build with
//! `--features obs`. `--trace-out <path>` records the pipeline
//! comparison in the flight recorder and writes Chrome trace-event JSON
//! — one track per pipeline worker, so the mint/seal/plan overlap is
//! visible in Perfetto (requires `--features obs`).

use std::hint::black_box;
use std::time::Instant;

use keytree::{Batch, KeyTree, MarkOutcome, MarkScratch, MemberId};
use rekeymsg::{seal_context, Layout, UkaAssignment};
use wirecrypto::{KeyGen, SealedKey, SymKey};

const SCHEMA: &str = "bench_scale/v2";
const IDENTITY_WORKERS: [usize; 2] = [1, 4];

#[derive(Clone, Copy)]
struct Cell {
    n: u32,
    d: u32,
    joins: usize,
    leaves: usize,
}

fn grid(smoke: bool) -> Vec<Cell> {
    let (sizes, churn): (&[u32], &[(usize, usize)]) = if smoke {
        (&[1 << 10, 1 << 12], &[(64, 64)])
    } else {
        (&[1 << 14, 1 << 17, 1 << 20], &[(64, 64), (512, 512)])
    };
    let mut cells = Vec::new();
    for &n in sizes {
        for d in [4u32, 8, 16] {
            for &(joins, leaves) in churn {
                cells.push(Cell {
                    n,
                    d,
                    joins,
                    leaves,
                });
            }
        }
    }
    cells
}

/// The identity-gate cell: the acceptance row (N = 2^20, d = 8, 64/64) in
/// full mode, the largest smoke cell otherwise.
fn identity_cell(smoke: bool) -> Cell {
    if smoke {
        Cell {
            n: 1 << 12,
            d: 8,
            joins: 64,
            leaves: 64,
        }
    } else {
        Cell {
            n: 1 << 20,
            d: 8,
            joins: 64,
            leaves: 64,
        }
    }
}

fn make_batch(cell: Cell, keygen: &mut KeyGen) -> Batch {
    let n = cell.n;
    let stride = (n / (2 * cell.leaves.max(1)) as u32).max(1);
    let leaves: Vec<MemberId> = (0..cell.leaves as u32).map(|i| (i * stride) % n).collect();
    let joins: Vec<(MemberId, SymKey)> = (0..cell.joins as u32)
        .map(|i| (n + i, keygen.next_key()))
        .collect();
    Batch::new(joins, leaves)
}

/// Seals every encryption edge of the outcome under its child key. Raw
/// (packet-free) sealing works at any N: `seal_context` takes the full
/// 32-bit node ID, only the packet wire format caps IDs at 16 bits.
fn seal_all(tree: &KeyTree, outcome: &MarkOutcome, msg_seq: u64) -> Vec<SealedKey> {
    outcome
        .encryptions
        .iter()
        .map(|edge| {
            let (Some(kek), Some(plain)) = (tree.key_of(edge.child), tree.key_of(edge.parent))
            else {
                unreachable!("marking emits edges only over live keys")
            };
            SealedKey::seal(&kek, &plain, seal_context(msg_seq, edge.child))
        })
        .collect()
}

struct CellReport {
    cell: Cell,
    marking_ms: f64,
    encryptions: usize,
    seal_enc_per_sec: f64,
    /// Full `UkaAssignment::build` where the wire permits, the wide
    /// `plan_and_seal` build beyond — populated at every N.
    message_build_ms: f64,
    /// The UKA planning stage alone (`rekeymsg::plan_in` with a warm
    /// scratch), split out of `message_build_ms` since the run-aggregated
    /// rewrite made it O(E) — populated at every N.
    plan_ms: f64,
    resident_bytes_per_node: f64,
    aos_bytes_per_node: f64,
    /// Sum of every timed segment (marking, sealing, message build)
    /// across all reps — the denominator for obs stage coverage, which
    /// accumulates across reps the same way.
    measured_wall_ms: f64,
}

/// Whether a full UKA message build is possible: every node ID that can
/// appear in a packet must fit `u16`.
fn wire_permits_full_message(tree: &KeyTree) -> bool {
    tree.storage_len() <= u16::MAX as usize + 1
}

fn bench_cell(cell: Cell, reps: usize) -> CellReport {
    let mut keygen = KeyGen::from_seed(0x0005_CA1E_u64 + cell.d as u64);
    let base = KeyTree::balanced(cell.n, cell.d, &mut keygen);
    let mut scratch = MarkScratch::new();

    let mut marking_ms = f64::INFINITY;
    let mut seal_rate = 0.0f64;
    let mut message_build_ms = f64::INFINITY;
    let mut plan_ms = f64::INFINITY;
    let mut encryptions = 0usize;
    let mut measured_wall_ms = 0.0f64;
    let mut tree = base.clone();
    let mut plan_scratch = rekeymsg::PlanScratch::new();
    for _ in 0..reps {
        tree.clone_from(&base);
        let mut kg = keygen.clone();
        let batch = make_batch(cell, &mut kg);

        let start = Instant::now();
        let outcome = tree.process_batch_in(batch, &mut kg, &mut scratch);
        let mark_wall = start.elapsed().as_secs_f64() * 1000.0;
        marking_ms = marking_ms.min(mark_wall);
        measured_wall_ms += mark_wall;
        encryptions = outcome.encryptions.len();

        let start = Instant::now();
        let sealed = {
            // Raw sealing stands in for the in-message seal stage at the
            // sizes where no full message can be built, so it carries the
            // same stage span here.
            let _span = obs::span("stage.seal");
            seal_all(&tree, &outcome, 1)
        };
        let seal_secs = start.elapsed().as_secs_f64();
        measured_wall_ms += seal_secs * 1000.0;
        black_box(&sealed);
        if seal_secs > 0.0 {
            seal_rate = seal_rate.max(encryptions as f64 / seal_secs);
        }

        let start = Instant::now();
        if wire_permits_full_message(&tree) {
            let assignment = UkaAssignment::build(&tree, &outcome, 1, &Layout::DEFAULT)
                .unwrap_or_else(|e| unreachable!("wire-size precheck passed: {e}"));
            black_box(&assignment);
        } else {
            // Wide build: the same plans and sealed bytes, minus the
            // 16-bit packet serialization the wire rules out at this N.
            let wide = rekeymsg::plan_and_seal(&tree, &outcome, 1, &Layout::DEFAULT)
                .unwrap_or_else(|e| unreachable!("wide build has no wire cap: {e}"));
            black_box(&wide);
        }
        let wall = start.elapsed().as_secs_f64() * 1000.0;
        measured_wall_ms += wall;
        message_build_ms = message_build_ms.min(wall);

        // The planning stage alone, split out of the message build. A
        // second plan of the same outcome is bit-identical, so this adds
        // measurement without perturbing the build timing above; it is
        // deliberately left out of `measured_wall_ms` (the obs stage
        // spans cover the in-build plan, not this re-run).
        let start = Instant::now();
        let plans = rekeymsg::plan_in(&tree, &outcome, &Layout::DEFAULT, &mut plan_scratch)
            .unwrap_or_else(|e| unreachable!("DEFAULT layout fits every grid tree: {e}"));
        plan_ms = plan_ms.min(start.elapsed().as_secs_f64() * 1000.0);
        black_box(&plans);
    }

    let nodes = tree.storage_len().max(1) as f64;
    CellReport {
        cell,
        marking_ms,
        encryptions,
        seal_enc_per_sec: seal_rate,
        message_build_ms,
        plan_ms,
        resident_bytes_per_node: tree.resident_bytes() as f64 / nodes,
        aos_bytes_per_node: tree.aos_equivalent_bytes() as f64 / nodes,
        measured_wall_ms,
    }
}

/// The disjoint stage spans whose totals are compared against the
/// measured batch wall time: marking phases 1–2, fresh-key minting,
/// sealing, and FEC encoding.
const STAGE_SPANS: [&str; 4] = ["stage.mark", "stage.mint", "stage.seal", "stage.encode"];

/// Per-stage observability report for one cell: the snapshot taken right
/// after the cell ran (the registry is reset before each cell) plus the
/// coverage arithmetic against its measured wall time.
struct ObsCellReport {
    cell: Cell,
    measured_wall_ms: f64,
    stage_total_ms: f64,
    coverage_pct: f64,
    snap: obs::Snapshot,
}

impl ObsCellReport {
    fn new(cell: Cell, measured_wall_ms: f64, snap: obs::Snapshot) -> Self {
        let stage_total_ms = snap.span_total_ns(&STAGE_SPANS) as f64 / 1e6;
        let coverage_pct = if measured_wall_ms > 0.0 {
            100.0 * stage_total_ms / measured_wall_ms
        } else {
            0.0
        };
        ObsCellReport {
            cell,
            measured_wall_ms,
            stage_total_ms,
            coverage_pct,
            snap,
        }
    }

    /// The `obs_scale/v1` wrapper: cell coordinates, wall/coverage
    /// numbers, the full `obs/v1` snapshot embedded verbatim, and — when
    /// the pipeline comparison ran under obs — a second snapshot covering
    /// exactly that run (the `pipeline.*` gauges and histograms).
    fn to_json(&self, pipeline_obs: Option<&obs::Snapshot>) -> String {
        let pipeline_field = pipeline_obs.map_or(String::new(), |snap| {
            format!(", \"pipeline_obs\": {}", snap.to_json().trim_end())
        });
        format!(
            "{{\"schema\": \"obs_scale/v1\", \"cell\": {{\"n\": {}, \"d\": {}, \"joins\": {}, \
             \"leaves\": {}}}, \"measured_wall_ms\": {}, \"stage_total_ms\": {}, \
             \"coverage_pct\": {}, \"obs\": {}{}}}\n",
            self.cell.n,
            self.cell.d,
            self.cell.joins,
            self.cell.leaves,
            fmt_f(self.measured_wall_ms),
            fmt_f(self.stage_total_ms),
            fmt_f(self.coverage_pct),
            self.snap.to_json().trim_end(),
            pipeline_field,
        )
    }

    /// Stage breakdown + full table, written through one stderr handle.
    fn render_stderr(&self, err: &mut dyn std::io::Write) -> std::io::Result<()> {
        writeln!(
            err,
            "obs stage breakdown: N=2^{} d={} J={} L={}",
            self.cell.n.trailing_zeros(),
            self.cell.d,
            self.cell.joins,
            self.cell.leaves
        )?;
        for name in STAGE_SPANS {
            let total_ms = self.snap.span(name).map_or(0.0, |s| s.total as f64 / 1e6);
            let share = if self.measured_wall_ms > 0.0 {
                100.0 * total_ms / self.measured_wall_ms
            } else {
                0.0
            };
            writeln!(err, "  {name:<14} {total_ms:>10.3} ms  {share:>5.1}%")?;
        }
        writeln!(
            err,
            "  coverage: {:.1}% of {:.3} ms measured batch wall",
            self.coverage_pct, self.measured_wall_ms
        )?;
        err.write_all(self.snap.render_table().as_bytes())
    }
}

struct IdentityReport {
    cell: Cell,
    matches_sequential: bool,
}

/// One worker-count row of the streaming-pipeline comparison.
struct PipelineRow {
    workers: usize,
    streamed_ms: f64,
    /// Streamed wall as a percentage of the barrier baseline (100 =
    /// equal; the workers=1 acceptance bound is ≤ 105).
    vs_barrier_pct: f64,
    stats: rekeymsg::StreamStats,
    /// Streamed sealed bytes equal the barrier's.
    identical: bool,
}

struct PipelineReport {
    cell: Cell,
    tuning: rekeymsg::StreamTuning,
    barrier_ms: f64,
    rows: Vec<PipelineRow>,
}

/// The tuning the pipeline comparison runs under: barrier-sized chunks,
/// but a channel deep enough that the producer never stalls behind the
/// consumer's (monolithic, dominant) planning pass — the root-edge
/// dependency means the consumer drains only after planning, so a
/// shallow channel would serialize minting behind it and erase the very
/// overlap being measured. Identity is unaffected by either knob.
const PIPE_TUNING: rekeymsg::StreamTuning = rekeymsg::StreamTuning {
    chunk_edges: rekeymsg::SEAL_CHUNK,
    channel_capacity: 512,
};

/// Runs the acceptance cell through the wide message build twice per
/// worker count — legacy barrier vs streaming pipeline — comparing walls
/// and sealed bytes. Both sides time the whole batch datapath (marking +
/// mint + plan + seal), since streaming moves minting inside the build.
fn bench_pipeline(cell: Cell, reps: usize) -> PipelineReport {
    use keytree::CompactionPolicy;
    let mut keygen = KeyGen::from_seed(0x0071_7E11_u64);
    let base = KeyTree::balanced(cell.n, cell.d, &mut keygen);
    let mut scratch = MarkScratch::new();
    let mut tree = base.clone();

    let mut barrier_ms = f64::INFINITY;
    let mut barrier_sealed: Vec<SealedKey> = Vec::new();
    for _ in 0..reps {
        tree.clone_from(&base);
        let mut kg = keygen.clone();
        let batch = make_batch(cell, &mut kg);
        let start = Instant::now();
        let outcome = tree.process_batch_in(batch, &mut kg, &mut scratch);
        let (plans, sealed) = rekeymsg::plan_and_seal(&tree, &outcome, 1, &Layout::DEFAULT)
            .unwrap_or_else(|e| unreachable!("wide build has no wire cap: {e}"));
        barrier_ms = barrier_ms.min(start.elapsed().as_secs_f64() * 1000.0);
        black_box(&plans);
        barrier_sealed = sealed;
    }

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        let (streamed_ms, stats, identical) = taskpool::with_workers(workers, || {
            let mut best = f64::INFINITY;
            let mut best_stats = rekeymsg::StreamStats::default();
            let mut identical = true;
            for _ in 0..reps {
                tree.clone_from(&base);
                let mut kg = keygen.clone();
                let batch = make_batch(cell, &mut kg);
                let start = Instant::now();
                let (outcome, pending) = tree.process_batch_deferred_in(
                    batch,
                    &mut kg,
                    &mut scratch,
                    &CompactionPolicy::DISABLED,
                );
                let (derived, built) = rekeymsg::stream::plan_and_seal_streamed(
                    &tree,
                    &outcome,
                    &pending,
                    1,
                    &Layout::DEFAULT,
                    PIPE_TUNING,
                );
                tree.install_minted(&outcome.updated_knodes, &derived);
                let (plans, sealed, stats) =
                    built.unwrap_or_else(|e| unreachable!("wide build has no wire cap: {e}"));
                let wall = start.elapsed().as_secs_f64() * 1000.0;
                black_box(&plans);
                identical &= sealed == barrier_sealed;
                if wall < best {
                    best = wall;
                    best_stats = stats;
                }
            }
            (best, best_stats, identical)
        });
        rows.push(PipelineRow {
            workers,
            streamed_ms,
            vs_barrier_pct: if barrier_ms > 0.0 {
                100.0 * streamed_ms / barrier_ms
            } else {
                0.0
            },
            stats,
            identical,
        });
    }
    PipelineReport {
        cell,
        tuning: PIPE_TUNING,
        barrier_ms,
        rows,
    }
}

/// Replays one cell at each worker count and demands bit-identical marking
/// outcomes (keys included, via the sealed bytes) across all of them.
fn bench_identity(cell: Cell) -> IdentityReport {
    let run = |workers: usize| -> (MarkOutcome, Vec<SealedKey>) {
        taskpool::with_workers(workers, || {
            let mut keygen = KeyGen::from_seed(0x0001_DE47_u64);
            let mut tree = KeyTree::balanced(cell.n, cell.d, &mut keygen);
            let batch = make_batch(cell, &mut keygen);
            let mut scratch = MarkScratch::new();
            let outcome = tree.process_batch_in(batch, &mut keygen, &mut scratch);
            let sealed = seal_all(&tree, &outcome, 1);
            (outcome, sealed)
        })
    };
    let baseline = run(IDENTITY_WORKERS[0]);
    let matches = IDENTITY_WORKERS[1..].iter().all(|&w| run(w) == baseline);
    IdentityReport {
        cell,
        matches_sequential: matches,
    }
}

// ---------------------------------------------------------------------------
// JSON emit + check
// ---------------------------------------------------------------------------

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

fn render_json(
    mode: &str,
    cells: &[CellReport],
    identity: &IdentityReport,
    pipeline: &PipelineReport,
) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|r| {
            let msg = fmt_f(r.message_build_ms);
            let reduction = if r.aos_bytes_per_node > 0.0 {
                100.0 * (1.0 - r.resident_bytes_per_node / r.aos_bytes_per_node)
            } else {
                0.0
            };
            format!(
                "    {{\"n\": {}, \"d\": {}, \"joins\": {}, \"leaves\": {}, \
                 \"marking_ms\": {}, \"encryptions\": {}, \"seal_enc_per_sec\": {}, \
                 \"message_build_ms\": {}, \"plan_ms\": {}, \"resident_bytes_per_node\": {}, \
                 \"aos_bytes_per_node\": {}, \"bytes_reduction_pct\": {}}}",
                r.cell.n,
                r.cell.d,
                r.cell.joins,
                r.cell.leaves,
                fmt_f(r.marking_ms),
                r.encryptions,
                fmt_f(r.seal_enc_per_sec),
                msg,
                fmt_f(r.plan_ms),
                fmt_f(r.resident_bytes_per_node),
                fmt_f(r.aos_bytes_per_node),
                fmt_f(reduction),
            )
        })
        .collect();
    let pipe_rows: Vec<String> = pipeline
        .rows
        .iter()
        .map(|r| {
            format!(
                "      {{\"workers\": {}, \"streamed_ms\": {}, \"vs_barrier_pct\": {}, \
                 \"overlap_pct\": {}, \"mint_busy_ms\": {}, \"seal_busy_ms\": {}, \
                 \"plan_busy_ms\": {}, \"identical\": {}, \"overlapped\": {}}}",
                r.workers,
                fmt_f(r.streamed_ms),
                fmt_f(r.vs_barrier_pct),
                fmt_f(r.stats.overlap_pct()),
                fmt_f(r.stats.mint_busy_ns as f64 / 1e6),
                fmt_f(r.stats.seal_busy_ns as f64 / 1e6),
                fmt_f(r.stats.plan_busy_ns as f64 / 1e6),
                r.identical,
                r.workers >= 2 && r.stats.overlap_pct() > 0.0,
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"identity\": {{\n    \
         \"n\": {}, \"d\": {}, \"joins\": {}, \"leaves\": {},\n    \"workers\": [{}, {}],\n    \
         \"matches_sequential\": {}\n  }},\n  \"pipeline\": {{\n    \
         \"n\": {}, \"d\": {}, \"joins\": {}, \"leaves\": {},\n    \
         \"tuning\": {{\"chunk_edges\": {}, \"channel_capacity\": {}}},\n    \
         \"barrier_ms\": {},\n    \"rows\": [\n{}\n    ]\n  }},\n  \"scale\": [\n{}\n  ]\n}}\n",
        identity.cell.n,
        identity.cell.d,
        identity.cell.joins,
        identity.cell.leaves,
        IDENTITY_WORKERS[0],
        IDENTITY_WORKERS[1],
        identity.matches_sequential,
        pipeline.cell.n,
        pipeline.cell.d,
        pipeline.cell.joins,
        pipeline.cell.leaves,
        pipeline.tuning.chunk_edges,
        pipeline.tuning.channel_capacity,
        fmt_f(pipeline.barrier_ms),
        pipe_rows.join(",\n"),
        rows.join(",\n")
    )
}

/// Structural well-formedness: balanced braces/brackets outside strings,
/// non-empty, object at the top level.
fn json_well_formed(text: &str) -> bool {
    let trimmed = text.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return false;
    }
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in trimmed.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string
}

/// Numeric value of `key` inside one JSON `row` fragment, when present.
fn field_in_row(row: &str, key: &str) -> Option<f64> {
    let pos = row.find(key)? + key.len();
    let rest = row[pos..].trim_start_matches([':', ' ']);
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Validates a previously emitted `BENCH_scale.json`. Returns a list of
/// problems (empty = valid).
fn check_report(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    if !json_well_formed(text) {
        problems.push("not a well-formed JSON object".to_string());
        return problems;
    }
    for key in [
        "\"schema\"",
        SCHEMA,
        "\"identity\"",
        "\"pipeline\"",
        "\"scale\"",
        "\"marking_ms\"",
        "\"seal_enc_per_sec\"",
        "\"plan_ms\"",
        "\"resident_bytes_per_node\"",
        "\"overlap_pct\"",
    ] {
        if !text.contains(key) {
            problems.push(format!("missing {key}"));
        }
    }
    if !text.contains("\"matches_sequential\": true") {
        problems.push("parallel marking did not match sequential".to_string());
    }
    if text.contains("\"message_build_ms\": null") {
        problems.push("message_build_ms is null in some row".to_string());
    }
    if text.contains("\"plan_ms\": null") {
        problems.push("plan_ms is null in some row".to_string());
    }
    if text.contains("\"identical\": false") {
        problems.push("streamed sealed bytes differ from the barrier's".to_string());
    }
    // The acceptance row must be present in a full-mode report with the
    // run-aggregated planner's perf bound holding (the pre-rewrite
    // planner spent ~225 ms in this cell). Stage overlap is reported but
    // not gated: with planning at O(E) the whole build is ~1 ms, so
    // whether the sub-ms stage windows intersect is scheduling jitter,
    // not a property of the pipeline (the binding gates are sealed-byte
    // identity at every worker count, checked above).
    if text.contains("\"mode\": \"full\"") {
        // Search inside the "scale" array: the same (n, d, joins) triple
        // also heads the identity and pipeline sections.
        let scale = text.find("\"scale\"").map_or("", |p| &text[p..]);
        let marker = format!("\"n\": {}, \"d\": 8, \"joins\": 64", 1u32 << 20);
        match scale.find(&marker) {
            None => {
                problems
                    .push("full-mode report is missing the N=2^20, d=8, J=L=64 row".to_string());
            }
            Some(pos) => {
                let row_end = scale[pos..].find('}').map_or(scale.len(), |e| pos + e);
                let row = &scale[pos..row_end];
                const BOUND_MS: f64 = 25.0;
                for key in ["\"message_build_ms\"", "\"plan_ms\""] {
                    match field_in_row(row, key) {
                        None => problems.push(format!("acceptance row lacks a numeric {key}")),
                        Some(v) if !(v > 0.0 && v <= BOUND_MS) => problems.push(format!(
                            "acceptance row {key} = {v} ms, want (0, {BOUND_MS}]"
                        )),
                        Some(_) => {}
                    }
                }
            }
        }
    }
    problems
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = std::env::var("REKEY_QUICK").is_ok_and(|v| v != "0");
    let mut out_path = "BENCH_scale.json".to_string();
    let mut check_path: Option<String> = None;
    let mut obs_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut pipeline_only = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--check" => check_path = Some(it.next().expect("--check needs a path")),
            "--obs-out" => obs_out = Some(it.next().expect("--obs-out needs a path")),
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out needs a path")),
            "--pipeline-only" => pipeline_only = true,
            other => {
                eprintln!(
                    "unknown flag {other}; use [--smoke] [--out PATH] [--check PATH] \
                     [--obs-out PATH] [--trace-out PATH] [--pipeline-only]"
                );
                std::process::exit(2);
            }
        }
    }
    let obs_sink = match bench::ObsSink::resolve(obs_out) {
        Ok(sink) => sink,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };
    let trace_sink = match bench::TraceSink::resolve(trace_out) {
        Ok(sink) => sink,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };

    if let Some(path) = check_path {
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("BENCH check FAILED: cannot read {path}");
            std::process::exit(1);
        };
        let problems = check_report(&text);
        if problems.is_empty() {
            println!("BENCH check ok: {path}");
            return;
        }
        for p in &problems {
            eprintln!("BENCH check FAILED: {p}");
        }
        std::process::exit(1);
    }

    let mode = if smoke { "smoke" } else { "full" };
    let reps = if smoke { 1 } else { 3 };

    if pipeline_only {
        // Iteration aid: just the streamed-vs-barrier comparison at the
        // acceptance cell, no JSON emitted.
        let cell = identity_cell(smoke);
        trace_sink.start();
        let pipeline = bench_pipeline(cell, reps);
        trace_sink
            .finish(&mut std::io::stderr().lock())
            .expect("write trace JSON");
        for row in &pipeline.rows {
            eprintln!(
                "  workers={} streamed {:>8.3} ms ({:>5.1}% of barrier {:.3} ms), \
                 overlap {:>5.1}%, identical={}",
                row.workers,
                row.streamed_ms,
                row.vs_barrier_pct,
                pipeline.barrier_ms,
                row.stats.overlap_pct(),
                row.identical,
            );
        }
        if pipeline.rows.iter().any(|r| !r.identical) {
            eprintln!("FAILED: streamed sealed bytes differ from the barrier's");
            std::process::exit(1);
        }
        return;
    }

    let cells = grid(smoke);
    eprintln!("scale: {} cells ({mode})", cells.len());
    // The cell whose per-stage snapshot ships when obs output is on: the
    // acceptance row (N = 2^20 in full mode, the largest smoke cell
    // otherwise) — the same cell the identity gate replays.
    let obs_cell = identity_cell(smoke);
    let mut obs_report: Option<ObsCellReport> = None;
    let mut reports = Vec::with_capacity(cells.len());
    for cell in cells {
        if obs_sink.active() {
            obs::reset();
        }
        let r = bench_cell(cell, reps);
        if obs_sink.active()
            && (cell.n, cell.d, cell.joins, cell.leaves)
                == (obs_cell.n, obs_cell.d, obs_cell.joins, obs_cell.leaves)
        {
            obs_report = Some(ObsCellReport::new(
                cell,
                r.measured_wall_ms,
                obs::snapshot(),
            ));
        }
        eprintln!(
            "  N=2^{:<2} d={:<2} J={:<3} L={:<3} marking {:>8.3} ms, {:>6} enc, \
             seal {:>9.0}/s, build {:>8.3} ms (plan {:>7.3} ms), {:>5.1} B/node (AoS {:>5.1})",
            cell.n.trailing_zeros(),
            cell.d,
            cell.joins,
            cell.leaves,
            r.marking_ms,
            r.encryptions,
            r.seal_enc_per_sec,
            r.message_build_ms,
            r.plan_ms,
            r.resident_bytes_per_node,
            r.aos_bytes_per_node,
        );
        reports.push(r);
    }

    let id_cell = identity_cell(smoke);
    eprintln!(
        "identity: N=2^{} d={} workers {:?}",
        id_cell.n.trailing_zeros(),
        id_cell.d,
        IDENTITY_WORKERS
    );
    let identity = bench_identity(id_cell);
    eprintln!("  matches_sequential={}", identity.matches_sequential);

    eprintln!(
        "pipeline: N=2^{} d={} streamed vs barrier",
        id_cell.n.trailing_zeros(),
        id_cell.d
    );
    // A fresh registry window over the pipeline comparison, so the
    // `pipeline.*` metrics snapshot covers exactly that run.
    if obs_sink.active() {
        obs::reset();
    }
    trace_sink.start();
    let pipeline = bench_pipeline(id_cell, reps);
    trace_sink
        .finish(&mut std::io::stderr().lock())
        .expect("write trace JSON");
    let pipeline_snap = obs_sink.active().then(obs::snapshot);
    for row in &pipeline.rows {
        eprintln!(
            "  workers={} streamed {:>8.3} ms ({:>5.1}% of barrier {:.3} ms), \
             overlap {:>5.1}%, identical={}",
            row.workers,
            row.streamed_ms,
            row.vs_barrier_pct,
            pipeline.barrier_ms,
            row.stats.overlap_pct(),
            row.identical,
        );
    }

    let json = render_json(mode, &reports, &identity, &pipeline);
    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
    println!("wrote {out_path}");

    if obs_sink.active() {
        let report = obs_report.expect("the obs cell is always in the grid");
        report
            .render_stderr(&mut std::io::stderr().lock())
            .expect("write obs tables");
        if let Some(path) = &obs_sink.path {
            std::fs::write(path, report.to_json(pipeline_snap.as_ref()))
                .expect("write obs snapshot");
            eprintln!("wrote obs snapshot to {path}");
        }
    }

    if !identity.matches_sequential {
        eprintln!("FAILED: parallel marking differs from sequential");
        std::process::exit(1);
    }
    if pipeline.rows.iter().any(|r| !r.identical) {
        eprintln!("FAILED: streamed sealed bytes differ from the barrier's");
        std::process::exit(1);
    }
}
