//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() {
    bench::figures::fig08(bench::Mode::from_env());
}
