//! Regenerates every figure and table in sequence (EXPERIMENTS.md source).
//!
//! Figure text goes to stdout — byte-identical across runs and worker
//! counts, so two runs can be diffed directly. Per-figure wall times go
//! to stderr so CI logs surface regressions without perturbing the
//! comparable output. All stderr diagnostics — the `[time]` lines and,
//! with `--obs-out`/`REKEY_OBS=1`, the metrics table — go through one
//! `stderr` lock held for the whole run, so they can never interleave
//! mid-line with each other or with figure stdout under any
//! `REKEY_THREADS` setting.
//!
//! `REKEY_FIGURES=name,name,..` restricts the run to a subset of figures
//! (exact names from the canonical list); unknown names abort. The
//! header and figure text are unchanged for the selected subset, so a
//! filtered run is byte-identical to the corresponding slice of a full
//! run.

use std::io::{self, Write};
use std::time::Instant;

use bench::{Mode, ObsSink, ALL_FIGURES};

fn main() -> io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut obs_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--obs-out" => obs_out = Some(it.next().expect("--obs-out needs a path")),
            other => {
                eprintln!("unknown flag {other}; use [--obs-out PATH]");
                std::process::exit(2);
            }
        }
    }
    let obs_sink = match ObsSink::resolve(obs_out) {
        Ok(sink) => sink,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };

    let figures: Vec<&(&str, bench::FigFn)> = match std::env::var("REKEY_FIGURES") {
        Ok(filter) => {
            let wanted: Vec<&str> = filter
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            for name in &wanted {
                if !ALL_FIGURES.iter().any(|(n, _)| n == name) {
                    eprintln!("REKEY_FIGURES names unknown figure {name}");
                    std::process::exit(2);
                }
            }
            ALL_FIGURES
                .iter()
                .filter(|(n, _)| wanted.contains(n))
                .collect()
        }
        Err(_) => ALL_FIGURES.iter().collect(),
    };

    let mode = Mode::from_env();
    let mut out = io::stdout().lock();
    let mut err = io::stderr().lock();
    writeln!(
        out,
        "# Figure regeneration run (messages/point = {}, workload runs = {}, trajectory = {})",
        mode.messages, mode.runs, mode.trajectory
    )?;
    let total = Instant::now();
    for (name, f) in figures {
        let t = Instant::now();
        f(mode, &mut out)?;
        writeln!(err, "[time] {name}: {:.2}s", t.elapsed().as_secs_f64())?;
    }
    writeln!(err, "[time] total: {:.2}s", total.elapsed().as_secs_f64())?;
    if obs_sink.active() {
        obs_sink.emit(&obs::snapshot(), &mut err)?;
        if let Some(path) = &obs_sink.path {
            writeln!(err, "wrote obs snapshot to {path}")?;
        }
    }
    Ok(())
}
