//! Regenerates every figure and table in sequence (EXPERIMENTS.md source).
use bench::figures;
use bench::Mode;

fn main() {
    let mode = Mode::from_env();
    println!(
        "# Figure regeneration run (messages/point = {}, workload runs = {}, trajectory = {})",
        mode.messages, mode.runs, mode.trajectory
    );
    figures::fig06(mode);
    figures::fig07(mode);
    figures::fig08(mode);
    figures::fig09(mode);
    figures::fig10(mode);
    figures::fig12_13(mode);
    figures::fig14(mode);
    figures::fig15(mode);
    figures::fig16(mode);
    figures::fig17(mode);
    figures::fig18(mode);
    figures::fig19_20(mode);
    figures::fig21(mode);
    figures::sigcomm_degree(mode);
    figures::sigcomm_batch(mode);
    figures::sigcomm_sparseness(mode);
    figures::sigcomm_model(mode);
    bench::ablations::ablation_send_order(mode);
    bench::ablations::ablation_loss_model(mode);
    bench::ablations::ablation_uka(mode);
}
