//! Regenerates every figure and table in sequence (EXPERIMENTS.md source).
//!
//! Figure text goes to stdout — byte-identical across runs and worker
//! counts, so two runs can be diffed directly. Per-figure wall times go
//! to stderr so CI logs surface regressions without perturbing the
//! comparable output.

use std::io::{self, Write};
use std::time::Instant;

use bench::{Mode, ALL_FIGURES};

fn main() -> io::Result<()> {
    let mode = Mode::from_env();
    let mut out = io::stdout().lock();
    writeln!(
        out,
        "# Figure regeneration run (messages/point = {}, workload runs = {}, trajectory = {})",
        mode.messages, mode.runs, mode.trajectory
    )?;
    let total = Instant::now();
    for (name, f) in ALL_FIGURES {
        let t = Instant::now();
        f(mode, &mut out)?;
        eprintln!("[time] {name}: {:.2}s", t.elapsed().as_secs_f64());
    }
    eprintln!("[time] total: {:.2}s", total.elapsed().as_secs_f64());
    Ok(())
}
