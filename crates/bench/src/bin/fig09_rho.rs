//! Regenerates the corresponding evaluation output; see bench::figures.
fn main() {
    bench::figures::fig09(bench::Mode::from_env());
}
