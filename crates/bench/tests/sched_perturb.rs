//! Schedule-perturbation bit-identity gate for the figure engine: whole
//! rendered figures must be byte-identical under seeded adversarial
//! `taskpool` schedules (shuffled task pickup, injected yields) at any
//! worker count — the dynamic companion to xcheck's static
//! `determinism-unordered-iter` rule.

use bench::Mode;

fn render_figure(workers: usize, sched_seed: Option<u64>, fig: bench::FigFn) -> Vec<u8> {
    let mode = Mode {
        messages: 2,
        runs: 2,
        trajectory: 4,
    };
    let mut out = Vec::new();
    taskpool::with_workers(workers, || match sched_seed {
        Some(seed) => taskpool::with_schedule(seed, || fig(mode, &mut out)),
        None => fig(mode, &mut out),
    })
    .expect("figure renders to a Vec");
    out
}

#[test]
fn figure_text_is_schedule_invariant() {
    // Two cheap figures — a workload table and a transport grid — rendered
    // under eight adversarial schedules each, sequential and parallel.
    for fig in [
        bench::figures::sigcomm_sparseness as bench::FigFn,
        bench::figures::sigcomm_model as bench::FigFn,
    ] {
        let baseline = render_figure(1, None, fig);
        assert!(!baseline.is_empty());
        for seed in 0..8u64 {
            for workers in [1, 3] {
                assert_eq!(
                    baseline,
                    render_figure(workers, Some(seed), fig),
                    "seed={seed}, workers={workers}"
                );
            }
        }
    }
}
