//! Regression for stderr hygiene in `all_figures`: the per-figure
//! `[time]` lines (and the obs table, when compiled in) go through one
//! stderr lock, so they must come out whole — never split mid-line by
//! worker output — and must never leak into the byte-comparable figure
//! stdout, at any `REKEY_THREADS`.

use std::process::Command;

fn all_figures() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_all_figures"));
    cmd.env("REKEY_QUICK", "1")
        .env("REKEY_THREADS", "4")
        .env("REKEY_FIGURES", "fig06,fig07")
        .env_remove("REKEY_OBS");
    cmd
}

#[test]
fn stderr_diagnostics_never_split_or_leak_into_stdout() {
    let mut cmd = all_figures();
    if obs::enabled() {
        cmd.env("REKEY_OBS", "1");
    }
    let result = cmd.output().expect("run all_figures");
    assert!(
        result.status.success(),
        "{}",
        String::from_utf8_lossy(&result.stderr)
    );

    let stdout = String::from_utf8(result.stdout).expect("utf8 stdout");
    assert!(stdout.starts_with("# Figure regeneration run"));
    assert!(stdout.contains("### Figure 6"));
    assert!(stdout.contains("### Figure 7"));
    assert!(!stdout.contains("[time]"), "timing leaked into stdout");
    assert!(!stdout.contains("obs "), "obs table leaked into stdout");

    let stderr = String::from_utf8(result.stderr).expect("utf8 stderr");
    // A `[time]` fragment anywhere but the start of a line means a
    // diagnostic line was split by interleaved output.
    for line in stderr.lines() {
        if line.contains("[time]") {
            assert!(line.starts_with("[time] "), "split stderr line: {line:?}");
        }
    }
    let time_lines = stderr.lines().filter(|l| l.starts_with("[time] ")).count();
    assert_eq!(time_lines, 3, "fig06 + fig07 + total, got: {stderr}");
    if obs::enabled() {
        assert!(stderr.contains("obs spans"), "table present: {stderr}");
        for line in stderr.lines() {
            if line.contains("obs spans") {
                assert!(
                    line.starts_with("obs spans"),
                    "split table header: {line:?}"
                );
            }
        }
    }
}

#[test]
fn unknown_figure_filter_aborts() {
    let result = all_figures()
        .env("REKEY_FIGURES", "fig06,not_a_figure")
        .output()
        .expect("run all_figures");
    assert_eq!(result.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(stderr.contains("not_a_figure"), "{stderr}");
}
