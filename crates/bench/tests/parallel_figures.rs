//! The parallel figure engine must be invisible in the output: the same
//! experiment grid fanned out across workers must yield the exact
//! `MessageReport` stream the serial engine produces, and whole figures
//! rendered at different worker counts must be byte-identical.

use bench::{par, Mode};
use grouprekey::experiment::{ExperimentParams, ExperimentRun};
use grouprekey::MessageReport;

/// A small but non-trivial grid: three group sizes x two seeds, a few
/// messages each, mixed loss exposure through the default topology.
fn grid() -> Vec<ExperimentParams> {
    let mut cells = Vec::new();
    for n in [256u32, 512, 1024] {
        for seed in [7u64, 1009] {
            let mut p = ExperimentParams::default().with_n(n);
            p.seed = seed;
            p.messages = 2;
            cells.push(p);
        }
    }
    cells
}

fn run_grid(workers: usize) -> Vec<Vec<MessageReport>> {
    let cells = grid();
    taskpool::with_workers(workers, || {
        par(&cells, |&params| {
            let mut run = ExperimentRun::new(params);
            (0..params.messages).map(|_| run.step()).collect()
        })
    })
}

#[test]
fn report_stream_is_worker_count_invariant() {
    let sequential = run_grid(1);
    assert_eq!(sequential.len(), grid().len());
    for workers in [3, 8] {
        let parallel = run_grid(workers);
        assert_eq!(sequential, parallel, "workers={workers}");
    }
}

#[test]
fn report_stream_matches_direct_serial_loop() {
    // `par` under one worker must equal a plain for-loop: the helper adds
    // ordering machinery but no semantics.
    let cells = grid();
    let direct: Vec<Vec<MessageReport>> = cells
        .iter()
        .map(|&params| {
            let mut run = ExperimentRun::new(params);
            (0..params.messages).map(|_| run.step()).collect()
        })
        .collect();
    assert_eq!(direct, run_grid(1));
}

fn render_figure(workers: usize, fig: bench::FigFn) -> Vec<u8> {
    let mode = Mode {
        messages: 2,
        runs: 2,
        trajectory: 4,
    };
    let mut out = Vec::new();
    taskpool::with_workers(workers, || fig(mode, &mut out)).expect("figure renders to a Vec");
    out
}

#[test]
fn figure_text_is_worker_count_invariant() {
    // End-to-end check through the figure formatting layer on two cheap
    // figures: a workload table and a transport grid.
    for fig in [
        bench::figures::sigcomm_sparseness as bench::FigFn,
        bench::figures::sigcomm_model as bench::FigFn,
    ] {
        let sequential = render_figure(1, fig);
        assert!(!sequential.is_empty());
        for workers in [3, 8] {
            assert_eq!(sequential, render_figure(workers, fig), "workers={workers}");
        }
    }
}
