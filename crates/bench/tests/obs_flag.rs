//! The bench binaries must honor `--obs-out`/`REKEY_OBS=1` when the
//! metrics layer is compiled in, and fail fast — one clear line, nonzero
//! exit — when it is not. Both sides branch on [`obs::enabled`] so the
//! same test covers whichever way this binary was built.

use std::path::PathBuf;
use std::process::Command;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bench_obs_{tag}_{}.json", std::process::id()))
}

fn bench_rekey() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_bench_rekey"));
    // Quick workload; make sure an ambient REKEY_OBS doesn't leak in.
    cmd.env("REKEY_QUICK", "1").env_remove("REKEY_OBS");
    cmd
}

#[test]
fn obs_out_flag_writes_snapshot_or_errors_cleanly() {
    let obs_path = temp_path("flag");
    let out_path = temp_path("flag_main");
    let result = bench_rekey()
        .args([
            "--smoke",
            "--out",
            out_path.to_str().expect("utf8 temp path"),
            "--obs-out",
            obs_path.to_str().expect("utf8 temp path"),
        ])
        .output()
        .expect("spawn bench_rekey");
    if obs::enabled() {
        assert!(
            result.status.success(),
            "obs build must honor --obs-out: {}",
            String::from_utf8_lossy(&result.stderr)
        );
        let text = std::fs::read_to_string(&obs_path).expect("snapshot written");
        assert!(obs::json::well_formed(&text), "snapshot parses: {text}");
        assert!(text.contains("\"schema\": \"obs/v1\""));
        assert!(text.contains("rekey.batch"), "pipeline spans present");
        let stderr = String::from_utf8_lossy(&result.stderr);
        assert!(stderr.contains("obs spans"), "table on stderr: {stderr}");
    } else {
        assert_eq!(result.status.code(), Some(1), "nonzero exit");
        let stderr = String::from_utf8_lossy(&result.stderr);
        assert_eq!(
            stderr.lines().count(),
            1,
            "exactly one error line, got: {stderr}"
        );
        assert!(
            stderr.contains("rebuild with `--features obs`"),
            "error names the fix: {stderr}"
        );
        assert!(!obs_path.exists(), "no snapshot from a no-op build");
    }
    let _ = std::fs::remove_file(&obs_path);
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn rekey_obs_env_takes_the_same_gate() {
    let out_path = temp_path("env_main");
    let result = bench_rekey()
        .env("REKEY_OBS", "1")
        .args(["--smoke", "--out", out_path.to_str().expect("utf8")])
        .output()
        .expect("spawn bench_rekey");
    let stderr = String::from_utf8_lossy(&result.stderr);
    if obs::enabled() {
        assert!(result.status.success(), "{stderr}");
        assert!(stderr.contains("obs spans"), "table on stderr: {stderr}");
    } else {
        assert_eq!(result.status.code(), Some(1));
        assert!(stderr.contains("rebuild with `--features obs`"), "{stderr}");
    }
    let _ = std::fs::remove_file(&out_path);
}
