//! Self-timed microbenchmarks of the hot paths:
//! GF(2^8) fused multiply-accumulate, Reed–Solomon encode/decode across
//! block sizes, the marking algorithm at the paper's scale, UKA planning,
//! and sealing throughput.
//!
//! The harness is criterion-shaped but dependency-free (the build
//! environment is offline): each benchmark is warmed up, then timed over
//! enough iterations to fill a ~200 ms measurement window, and reported
//! as ns/iter plus MiB/s where a byte throughput is meaningful.

use std::hint::black_box;
use std::time::{Duration, Instant};

use gf256::Gf256;
use keytree::{Batch, KeyTree};
use rekeymsg::{assign, Layout};
use rse::{decode, BlockEncoder, Share};
use wirecrypto::{KeyGen, SealedKey, SymKey};

/// Times `op` and prints one report line. `bytes` adds a throughput
/// column. `setup` runs outside the timed region before every iteration
/// batch, supplying the per-iteration input.
fn bench<S, T, O>(name: &str, bytes: Option<u64>, mut setup: S, mut op: O)
where
    S: FnMut() -> T,
    O: FnMut(T) -> Box<dyn FnOnce()>,
{
    // The closure returns a deferred drop so teardown cost (freeing large
    // outputs) stays outside the measured region.
    const WINDOW: Duration = Duration::from_millis(200);

    // Warm-up and calibration: how many iterations fit in the window?
    let mut iters_per_round = 1u64;
    loop {
        let input = setup();
        let start = Instant::now();
        let cleanup = op(input);
        let elapsed = start.elapsed();
        drop(cleanup);
        if elapsed * u32::try_from(iters_per_round).unwrap_or(u32::MAX) >= WINDOW
            || iters_per_round >= 1 << 20
        {
            break;
        }
        iters_per_round *= 2;
    }

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    while total < WINDOW {
        let input = setup();
        let start = Instant::now();
        let cleanup = op(input);
        total += start.elapsed();
        drop(cleanup);
        iters += 1;
    }

    let ns_per_iter = total.as_nanos() as f64 / iters as f64;
    match bytes {
        Some(n) => {
            let mib_s = (n as f64 * iters as f64) / total.as_secs_f64() / (1024.0 * 1024.0);
            println!("{name:<44} {ns_per_iter:>12.0} ns/iter {mib_s:>10.1} MiB/s");
        }
        None => println!("{name:<44} {ns_per_iter:>12.0} ns/iter"),
    }
}

/// Simple value benchmark: no per-iteration setup, output black-boxed.
fn bench_simple<R>(name: &str, bytes: Option<u64>, mut op: impl FnMut() -> R) {
    bench(
        name,
        bytes,
        || (),
        |()| {
            black_box(op());
            Box::new(|| ())
        },
    );
}

fn block(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..len).map(|b| (i * 37 + b) as u8).collect())
        .collect()
}

fn bench_gf_mul_acc() {
    let src = vec![0xA7u8; 1024];
    let mut dst = vec![0u8; 1024];
    bench_simple("gf256_mul_acc_slice/coeff_generic_1KiB", Some(1024), || {
        Gf256::mul_acc_slice(Gf256::new(0x8E), &src, &mut dst)
    });
    let mut dst2 = vec![0u8; 1024];
    bench_simple("gf256_mul_acc_slice/coeff_one_1KiB", Some(1024), || {
        Gf256::mul_acc_slice(Gf256::ONE, &src, &mut dst2)
    });
}

fn bench_rse_encode() {
    for k in [1usize, 5, 10, 20, 50] {
        let data = block(k, 1024);
        let mut enc = BlockEncoder::new(k).unwrap();
        // Warm the coefficient row cache: the steady-state server cost.
        let _ = enc.parity(0, &data).unwrap();
        bench_simple(
            &format!("rse_encode_parity/k={k}"),
            Some((k * 1024) as u64),
            || enc.parity(0, &data).unwrap(),
        );
    }
}

fn bench_rse_decode() {
    for k in [5usize, 10, 20] {
        let data = block(k, 1024);
        let mut enc = BlockEncoder::new(k).unwrap();
        // Worst case: all data lost, decode entirely from parities.
        let shares: Vec<Share> = (0..k)
            .map(|j| Share {
                index: k + j,
                data: enc.parity(j, &data).unwrap(),
            })
            .collect();
        bench_simple(&format!("rse_decode_worst_case/k={k}"), None, || {
            decode(k, &shares).unwrap()
        });
    }
}

fn marked_setup() -> (KeyTree, KeyGen, Vec<u32>) {
    let mut kg = KeyGen::from_seed(1);
    let tree = KeyTree::balanced(4096, 4, &mut kg);
    let leaves: Vec<u32> = (0..1024u32).map(|i| i * 4).collect();
    (tree, kg, leaves)
}

fn bench_marking() {
    bench(
        "marking_algorithm/N4096_L1024",
        None,
        marked_setup,
        |(mut tree, mut kg, leaves)| {
            let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
            black_box(&outcome);
            Box::new(move || drop((tree, kg, outcome)))
        },
    );
}

fn bench_uka() {
    let mut kg = KeyGen::from_seed(2);
    let mut tree = KeyTree::balanced(4096, 4, &mut kg);
    let leaves: Vec<u32> = (0..1024u32).map(|i| i * 4).collect();
    let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
    bench_simple("uka_plan/N4096_L1024", None, || {
        assign::plan(&tree, &outcome, &Layout::DEFAULT).unwrap()
    });
}

fn bench_full_message_construction() {
    // The whole server-side pipeline at the paper's scale: marking,
    // UKA packing, sealing, block partitioning, proactive parity encoding.
    bench(
        "full_message_construction/N4096_L1024_k10",
        None,
        || {
            let mut kg = KeyGen::from_seed(9);
            let tree = KeyTree::balanced(4096, 4, &mut kg);
            let leaves: Vec<u32> = (0..1024u32).map(|i| i * 4).collect();
            (tree, kg, leaves)
        },
        |(mut tree, mut kg, leaves)| {
            let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
            let built =
                rekeymsg::UkaAssignment::build(&tree, &outcome, 1, &Layout::DEFAULT).unwrap();
            let mut blocks = rekeymsg::BlockSet::new(built.packets, 10, Layout::DEFAULT);
            let schedule = blocks.round_one_schedule(1.5).unwrap();
            black_box(&schedule);
            Box::new(move || drop((tree, kg, schedule)))
        },
    );
}

fn bench_seal() {
    let kek = SymKey::from_bytes([1; 16]);
    let plain = SymKey::from_bytes([2; 16]);
    bench_simple("seal_one_encryption", None, || {
        SealedKey::seal(&kek, &plain, 12345)
    });
    let sealed = SealedKey::seal(&kek, &plain, 12345);
    bench_simple("unseal_one_encryption", None, || {
        sealed.unseal(&kek, 12345).unwrap()
    });
}

fn main() {
    println!("{:<44} {:>20} {:>16}", "benchmark", "time", "throughput");
    bench_gf_mul_acc();
    bench_rse_encode();
    bench_rse_decode();
    bench_marking();
    bench_uka();
    bench_full_message_construction();
    bench_seal();
}
