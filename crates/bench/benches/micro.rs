//! Criterion microbenchmarks of the hot paths:
//! GF(2^8) fused multiply-accumulate, Reed–Solomon encode/decode across
//! block sizes, the marking algorithm at the paper's scale, UKA planning,
//! and sealing throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use gf256::Gf256;
use keytree::{Batch, KeyTree};
use rekeymsg::{assign, Layout};
use rse::{decode, BlockEncoder, Share};
use wirecrypto::{KeyGen, SealedKey, SymKey};

fn bench_gf_mul_acc(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256_mul_acc_slice");
    let src = vec![0xA7u8; 1024];
    let mut dst = vec![0u8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("coeff_generic_1KiB", |b| {
        b.iter(|| Gf256::mul_acc_slice(Gf256::new(0x8E), &src, &mut dst))
    });
    group.bench_function("coeff_one_1KiB", |b| {
        b.iter(|| Gf256::mul_acc_slice(Gf256::ONE, &src, &mut dst))
    });
    group.finish();
}

fn block(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..len).map(|b| (i * 37 + b) as u8).collect())
        .collect()
}

fn bench_rse_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rse_encode_parity");
    for k in [1usize, 5, 10, 20, 50] {
        let data = block(k, 1024);
        group.throughput(Throughput::Bytes((k * 1024) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut enc = BlockEncoder::new(k).unwrap();
            // Warm the coefficient row cache: the steady-state server cost.
            let _ = enc.parity(0, &data).unwrap();
            b.iter(|| enc.parity(0, &data).unwrap())
        });
    }
    group.finish();
}

fn bench_rse_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rse_decode_worst_case");
    for k in [5usize, 10, 20] {
        let data = block(k, 1024);
        let mut enc = BlockEncoder::new(k).unwrap();
        // Worst case: all data lost, decode entirely from parities.
        let shares: Vec<Share> = (0..k)
            .map(|j| Share {
                index: k + j,
                data: enc.parity(j, &data).unwrap(),
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| decode(k, &shares).unwrap())
        });
    }
    group.finish();
}

fn bench_marking(c: &mut Criterion) {
    let mut group = c.benchmark_group("marking_algorithm");
    group.sample_size(20);
    group.bench_function("N4096_L1024", |b| {
        b.iter_batched(
            || {
                let mut kg = KeyGen::from_seed(1);
                let tree = KeyTree::balanced(4096, 4, &mut kg);
                let leaves: Vec<u32> = (0..1024u32).map(|i| i * 4).collect();
                (tree, kg, leaves)
            },
            |(mut tree, mut kg, leaves)| tree.process_batch(&Batch::new(vec![], leaves), &mut kg),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_uka(c: &mut Criterion) {
    let mut group = c.benchmark_group("uka_plan");
    group.sample_size(20);
    let mut kg = KeyGen::from_seed(2);
    let mut tree = KeyTree::balanced(4096, 4, &mut kg);
    let leaves: Vec<u32> = (0..1024u32).map(|i| i * 4).collect();
    let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
    group.bench_function("N4096_L1024", |b| {
        b.iter(|| assign::plan(&tree, &outcome, &Layout::DEFAULT))
    });
    group.finish();
}

fn bench_full_message_construction(c: &mut Criterion) {
    // The whole server-side pipeline at the paper's scale: marking,
    // UKA packing, sealing, block partitioning, proactive parity encoding.
    let mut group = c.benchmark_group("full_message_construction");
    group.sample_size(10);
    group.bench_function("N4096_L1024_k10_rho1_5", |b| {
        b.iter_batched(
            || {
                let mut kg = KeyGen::from_seed(9);
                let tree = KeyTree::balanced(4096, 4, &mut kg);
                let leaves: Vec<u32> = (0..1024u32).map(|i| i * 4).collect();
                (tree, kg, leaves)
            },
            |(mut tree, mut kg, leaves)| {
                let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
                let built =
                    rekeymsg::UkaAssignment::build(&tree, &outcome, 1, &Layout::DEFAULT);
                let mut blocks = rekeymsg::BlockSet::new(built.packets, 10, Layout::DEFAULT);
                blocks.round_one_schedule(1.5).unwrap()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_seal(c: &mut Criterion) {
    let kek = SymKey::from_bytes([1; 16]);
    let plain = SymKey::from_bytes([2; 16]);
    c.bench_function("seal_one_encryption", |b| {
        b.iter(|| SealedKey::seal(&kek, &plain, 12345))
    });
    let sealed = SealedKey::seal(&kek, &plain, 12345);
    c.bench_function("unseal_one_encryption", |b| {
        b.iter(|| sealed.unseal(&kek, 12345).unwrap())
    });
}

criterion_group!(
    benches,
    bench_gf_mul_acc,
    bench_rse_encode,
    bench_rse_decode,
    bench_marking,
    bench_uka,
    bench_full_message_construction,
    bench_seal
);
criterion_main!(benches);
