//! Pins the feature-off contract: with `enabled` compiled out, the whole
//! recording surface performs **zero heap allocations** (and the
//! feature-on build of the same calls performs plenty — the counting
//! allocator is validated against that, so a broken counter cannot pass
//! the off-path silently).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocator shim that counts every allocation, delegating to [`System`].
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure delegation to `System`; the counter is a relaxed atomic
// with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Exercises every recording entry point `rounds` times.
fn hammer(rounds: u64) {
    for i in 0..rounds {
        let _whole = obs::span("test.noalloc.outer");
        {
            let _nested = obs::span("test.noalloc.inner");
            obs::counter_add("test.noalloc.counter", i);
        }
        obs::observe("test.noalloc.value", i * 3);
        obs::gauge_set("test.noalloc.gauge", i);
    }
}

#[test]
fn off_path_records_nothing_and_allocates_nothing() {
    if obs::enabled() {
        // Feature-on build: instead validate that the counting allocator
        // actually counts, so the zero assertion below is meaningful.
        let before = allocations();
        hammer(64);
        let _snap = obs::snapshot();
        assert!(
            allocations() > before,
            "enabled-path hammer must allocate (registry slots, snapshot vectors)"
        );
        return;
    }

    // Warm-up outside the measured window (test harness machinery may
    // allocate lazily on first use).
    hammer(8);

    let before = allocations();
    hammer(4096);
    let snap = obs::snapshot();
    obs::reset();
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "feature-off spans/counters/gauges/snapshot must not touch the heap"
    );
    assert!(!snap.enabled);
    assert!(snap.spans.is_empty() && snap.counters.is_empty());
    // An empty snapshot's JSON still materializes (allocates) — outside
    // the measured window, and still deterministic.
    assert!(obs::json::well_formed(&snap.to_json()));
}
