//! Pins the feature-off contract: with `enabled` compiled out, the whole
//! recording surface — the four `// xcheck: no_alloc`-marked stubs plus
//! span guards, reset, and snapshot — performs **zero heap allocations**.
//! The feature-on build of the same calls performs plenty; the `xcheck-rt`
//! counting allocator is validated against that, so a broken counter
//! cannot pass the off-path silently.

#[global_allocator]
static ALLOC: xcheck_rt::CountingAlloc = xcheck_rt::CountingAlloc;

/// Exercises every recording entry point `rounds` times.
fn hammer(rounds: u64) {
    for i in 0..rounds {
        let _whole = obs::span("test.noalloc.outer");
        {
            let _nested = obs::span("test.noalloc.inner");
            obs::counter_add("test.noalloc.counter", i);
        }
        obs::observe("test.noalloc.value", i * 3);
        obs::gauge_set("test.noalloc.gauge", i);
    }
}

#[test]
fn off_path_records_nothing_and_allocates_nothing() {
    xcheck_rt::assert_counting();

    if obs::enabled() {
        // Feature-on build: instead validate that the counting allocator
        // actually counts, so the zero assertion below is meaningful.
        let (allocs, _) = xcheck_rt::count_in(|| {
            hammer(64);
            obs::snapshot()
        });
        assert!(
            allocs > 0,
            "enabled-path hammer must allocate (registry slots, snapshot vectors)"
        );
        return;
    }

    // Warm-up outside the measured window (test harness machinery may
    // allocate lazily on first use).
    hammer(8);

    let snap = xcheck_rt::assert_zero_alloc("obs disabled stubs", || {
        hammer(4096);
        let snap = obs::snapshot();
        obs::reset();
        snap
    });

    assert!(!snap.enabled);
    assert!(snap.spans.is_empty() && snap.counters.is_empty());
    // An empty snapshot's JSON still materializes (allocates) — outside
    // the measured window, and still deterministic.
    assert!(obs::json::well_formed(&snap.to_json()));
}
