//! Edge cases of the log2-histogram aggregation surface: the value `0`
//! (its own bucket), `u64::MAX` (the clamped tail bucket), exact
//! power-of-two bucket boundaries, and min/max exactness under
//! concurrent recording. Runs against the real registry, so each test
//! uses its own series names; without the `enabled` feature the tests
//! are vacuous no-ops, matching the crate's feature contract.

fn stats(snap: &obs::Snapshot, name: &str) -> obs::SeriesStats {
    snap.values
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("series {name} registered"))
        .clone()
}

#[test]
fn zero_is_its_own_bucket() {
    if !obs::enabled() {
        return;
    }
    for _ in 0..5 {
        obs::observe("test.hist.zero", 0);
    }
    let s = stats(&obs::snapshot(), "test.hist.zero");
    assert_eq!(s.count, 5);
    assert_eq!(s.total, 0);
    assert_eq!((s.min, s.max), (0, 0));
    assert_eq!((s.p50, s.p99), (0, 0), "all-zero series estimates zero");
}

#[test]
fn u64_max_lands_in_the_tail_bucket() {
    if !obs::enabled() {
        return;
    }
    obs::observe("test.hist.max", 0);
    obs::observe("test.hist.max", u64::MAX);
    let s = stats(&obs::snapshot(), "test.hist.max");
    assert_eq!(s.count, 2);
    assert_eq!(s.total, u64::MAX, "0 + u64::MAX must not wrap");
    assert_eq!((s.min, s.max), (0, u64::MAX));
    // Rank 1 of 2 is the zero observation; rank 2 the tail bucket, whose
    // upper bound is u64::MAX itself.
    assert_eq!(s.p50, 0);
    assert_eq!(s.p99, u64::MAX);
}

#[test]
fn power_of_two_boundaries_stay_inside_min_max() {
    if !obs::enabled() {
        return;
    }
    // Both edges of a mid-range bucket: 2^20 and 2^21 - 1 share bucket 21,
    // so every quantile estimate is the bucket's upper bound — but the
    // snapshot clamps it into the observed range.
    obs::observe("test.hist.edges", 1 << 20);
    obs::observe("test.hist.edges", (1 << 21) - 1);
    let s = stats(&obs::snapshot(), "test.hist.edges");
    assert_eq!((s.min, s.max), (1 << 20, (1 << 21) - 1));
    assert_eq!(s.p50, (1 << 21) - 1, "shared bucket's upper bound");
    assert_eq!(s.p99, (1 << 21) - 1);

    // A sweep of exact powers of two: estimates must never escape the
    // observed [min, max] envelope, even for the 1 -> 2 -> 4 low buckets.
    for exp in 0..48u32 {
        obs::observe("test.hist.powers", 1u64 << exp);
    }
    let s = stats(&obs::snapshot(), "test.hist.powers");
    assert_eq!(s.count, 48);
    assert_eq!((s.min, s.max), (1, 1u64 << 47));
    assert!(s.min <= s.p50 && s.p50 <= s.p99 && s.p99 <= s.max);
}

#[test]
fn concurrent_recording_keeps_min_max_exact() {
    if !obs::enabled() {
        return;
    }
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 2_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Thread t records the range [t*P + 1, (t+1)*P]; the
                    // global extremes are 1 and THREADS * P.
                    obs::observe("test.hist.racing", t * PER_THREAD + i + 1);
                }
            });
        }
    });
    let s = stats(&obs::snapshot(), "test.hist.racing");
    assert_eq!(s.count, THREADS * PER_THREAD, "no lost observations");
    assert_eq!(s.min, 1, "fetch_min is exact under contention");
    assert_eq!(s.max, THREADS * PER_THREAD, "fetch_max is exact");
    assert!(s.min <= s.p50 && s.p99 <= s.max);
}
