//! Concurrency contract of the global registry: observations recorded
//! from racing threads are never lost — counts and totals sum exactly.

#[test]
fn racing_recorders_sum_exactly() {
    if !obs::enabled() {
        return; // nothing to record without the feature
    }
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let _span = obs::span("test.threads.span");
                    obs::counter_add("test.threads.counter", 1);
                    obs::observe("test.threads.value", t * PER_THREAD + i);
                }
            });
        }
    });

    let snap = obs::snapshot();
    assert_eq!(snap.counter("test.threads.counter"), THREADS * PER_THREAD);
    let span = snap.span("test.threads.span").expect("span registered");
    assert_eq!(span.count, THREADS * PER_THREAD);
    let value = snap
        .values
        .iter()
        .find(|v| v.name == "test.threads.value")
        .expect("value registered");
    assert_eq!(value.count, THREADS * PER_THREAD);
    // Sum of 0 .. THREADS*PER_THREAD - 1.
    let n = THREADS * PER_THREAD;
    assert_eq!(value.total, n * (n - 1) / 2);
    assert_eq!(value.min, 0);
    assert_eq!(value.max, n - 1);

    // Reset semantics, checked after the race so the registry-wide
    // `obs::reset()` cannot zero the racing series mid-hammer.
    reset_zeroes_but_keeps_names();
}

fn reset_zeroes_but_keeps_names() {
    obs::counter_add("test.threads.reset_ctr", 41);
    drop(obs::span("test.threads.reset_span"));
    obs::reset();
    let snap = obs::snapshot();
    assert_eq!(snap.counter("test.threads.reset_ctr"), 0);
    let span = snap.span("test.threads.reset_span").expect("name survives");
    assert_eq!((span.count, span.total, span.min, span.max), (0, 0, 0, 0));
}
