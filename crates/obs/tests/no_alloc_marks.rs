//! Pins the flight-recorder hot path (`trace::instant`, span begin/end
//! via `obs::span`) at **zero steady-state heap allocations**, in both
//! feature states:
//!
//! * feature off — every trace entry point is a no-op stub;
//! * feature on, recording off — the off-path is one relaxed load;
//! * feature on, recording on — after warm-up (ring claimed, names
//!   interned and cached per thread) an event is a clock read plus two
//!   relaxed stores into the preallocated ring.
//!
//! Complements `no_alloc_off.rs`, which pins the aggregate-instrument
//! stubs; together they back the static `no-alloc-static` marks with the
//! dynamic counting-allocator contract.

#[global_allocator]
static ALLOC: xcheck_rt::CountingAlloc = xcheck_rt::CountingAlloc;

/// Exercises the recorder hot path `rounds` times: instants plus nested
/// span begin/end pairs (the begin/end hooks ride on `obs::span`).
fn hammer(rounds: u64) {
    for _ in 0..rounds {
        let _outer = obs::span("test.trace_noalloc.outer");
        {
            let _inner = obs::span("test.trace_noalloc.inner");
            obs::trace::instant("test.trace_noalloc.mark");
        }
        obs::trace::instant("test.trace_noalloc.tick");
    }
}

#[test]
fn recorder_hot_path_is_allocation_free() {
    xcheck_rt::assert_counting();

    // Recording off (the shipped default): zero allocations whether or
    // not the feature is compiled in.
    assert!(!obs::trace::is_recording());
    hammer(8); // warm-up: registry slots for the span names
    xcheck_rt::assert_zero_alloc("trace hot path, recording off", || hammer(4096));

    if !obs::enabled() {
        // Feature off: enable() is a stub too; the whole surface stays
        // allocation-free and drains empty.
        let trace = xcheck_rt::assert_zero_alloc("trace disabled stubs", || {
            obs::trace::enable(obs::trace::DEFAULT_CAPACITY);
            obs::trace::set_thread_track("test", 0);
            hammer(64);
            obs::trace::disable();
            obs::trace::clear();
            obs::trace::drain()
        });
        assert!(trace.events.is_empty() && trace.tracks.is_empty());
        return;
    }

    // Feature on, recording on: warm up once (claims this thread's ring,
    // interns and caches the names — those first-touch allocations are
    // the steady state's setup, not its cost), then measure.
    obs::trace::enable(obs::trace::DEFAULT_CAPACITY);
    obs::trace::set_thread_track("test-noalloc", 0);
    hammer(8);
    xcheck_rt::assert_zero_alloc("trace hot path, recording on", || hammer(1024));
    obs::trace::disable();

    // The measured events really landed in this thread's ring (1024
    // hammer rounds x 6 events, plus warm-up) — the zero-alloc window
    // was recording, not silently dropping.
    let trace = obs::trace::drain();
    let marks = trace
        .events
        .iter()
        .filter(|e| e.name == "test.trace_noalloc.mark")
        .count();
    assert!(marks >= 1024, "expected >= 1024 instants, got {marks}");
    assert_eq!(trace.dropped_total(), 0, "ring overflowed during hammer");
}
