//! Fixed-bucket log2 histogram arithmetic.
//!
//! Every span and observation series aggregates its values into
//! [`BUCKETS`] power-of-two buckets: bucket `0` holds the value `0`, and
//! bucket `b >= 1` holds values in `[2^(b-1), 2^b - 1]` (the final bucket
//! absorbs everything from `2^(BUCKETS-2)` up). Recording is one
//! `leading_zeros` plus one atomic increment, and quantiles come back out
//! as the conservative upper bound of the bucket holding the requested
//! rank — within 2x of the true value by construction, which is plenty to
//! tell a microsecond stage from a millisecond one.

/// Number of histogram buckets per series.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: `0` for `0`, else `floor(log2(v)) + 1`
/// clamped to the last bucket.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    let b = 64 - value.leading_zeros() as usize;
    b.min(BUCKETS - 1)
}

/// Largest value bucket `b` can hold (the quantile estimate returned for
/// ranks landing in that bucket).
#[must_use]
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b if b >= BUCKETS - 1 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// The value at quantile `q` (in `(0, 1]`) of a bucket-count array, as
/// the upper bound of the bucket containing the rank-`ceil(q * total)`
/// observation. Returns `0` for an empty histogram.
#[must_use]
pub fn quantile(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    // ceil(q * total), clamped into [1, total]: floating-point rounding
    // must never push the rank outside the population.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (b, &n) in counts.iter().enumerate() {
        cumulative += n;
        if cumulative >= rank {
            return bucket_upper_bound(b);
        }
    }
    bucket_upper_bound(BUCKETS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        // Every power of two opens a new bucket; its predecessor closes
        // the previous one.
        for b in 1..BUCKETS - 1 {
            let low = 1u64 << (b - 1);
            let high = (1u64 << b) - 1;
            assert_eq!(bucket_of(low), b, "low edge of bucket {b}");
            assert_eq!(bucket_of(high), b, "high edge of bucket {b}");
        }
        // The last bucket absorbs the clamped tail.
        assert_eq!(bucket_of(1u64 << 62), BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 63), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn upper_bounds_match_bucket_ranges() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
        for b in 1..BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_upper_bound(b)), b);
            assert_eq!(bucket_of(bucket_upper_bound(b) + 1), b + 1);
        }
    }

    fn counts_for(values: &[u64]) -> Vec<u64> {
        let mut counts = vec![0u64; BUCKETS];
        for &v in values {
            counts[bucket_of(v)] += 1;
        }
        counts
    }

    #[test]
    fn quantiles_of_empty_histogram_are_zero() {
        assert_eq!(quantile(&vec![0u64; BUCKETS], 0.5), 0);
        assert_eq!(quantile(&vec![0u64; BUCKETS], 0.99), 0);
    }

    #[test]
    fn p50_and_p99_land_in_the_right_buckets() {
        // 100 observations: 90 around ~100 (bucket 7, bound 127), 9
        // around ~1000 (bucket 10, bound 1023), 1 at ~10^6 (bucket 20).
        let mut values = vec![100u64; 90];
        values.extend(vec![1000u64; 9]);
        values.push(1_000_000);
        let counts = counts_for(&values);
        assert_eq!(quantile(&counts, 0.50), 127);
        assert_eq!(quantile(&counts, 0.90), 127);
        assert_eq!(quantile(&counts, 0.99), 1023);
        assert_eq!(quantile(&counts, 1.0), bucket_upper_bound(20));
    }

    #[test]
    fn single_observation_dominates_every_quantile() {
        let counts = counts_for(&[42]);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(quantile(&counts, q), 63, "q={q}");
        }
    }

    #[test]
    fn quantile_rank_rounds_up() {
        // Two observations in different buckets: p50 must take the first
        // (rank ceil(0.5 * 2) = 1), p51 the second.
        let counts = counts_for(&[1, 1024]);
        assert_eq!(quantile(&counts, 0.50), 1);
        assert_eq!(quantile(&counts, 0.51), 2047);
    }
}
