//! Interval-keyed time-series recorder (`obs_series/v1`).
//!
//! The scenario engine's per-interval statistics and the aggregate obs
//! instruments both collapse a whole run into end-of-run totals; this
//! module keeps the *curve*: one row per rekey interval, one column per
//! metric (encryptions per member, bytes on wire, tree depth, resident
//! bytes, per-stage wall deltas), serialized deterministically so two
//! identical runs emit identical bytes.
//!
//! Unlike the recorder in [`crate::trace`], this is a plain data
//! container with no feature gate — callers always get the explicit
//! columns they [`SeriesRecorder::set`]; only the
//! [`SeriesRecorder::snapshot_deltas`] stage-wall columns depend on the
//! `enabled` feature (they delta [`crate::snapshot`], which is empty in
//! disabled builds).

use crate::json::JsonWriter;
use crate::Snapshot;

/// One recorded row: the interval key plus values for the columns known
/// at the time (later-added columns backfill as 0 on emit).
#[derive(Debug, Clone, Default, PartialEq)]
struct Row {
    interval: u64,
    values: Vec<Option<f64>>,
}

/// Records named per-interval series and emits `obs_series/v1` JSON.
///
/// Usage per interval: [`begin_interval`](Self::begin_interval), then
/// any number of [`set`](Self::set) calls, then optionally
/// [`snapshot_deltas`](Self::snapshot_deltas) to capture what the obs
/// span totals and counters advanced by during the interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesRecorder {
    names: Vec<String>,
    rows: Vec<Row>,
    last: Snapshot,
}

impl SeriesRecorder {
    /// Schema tag written into the JSON form.
    pub const SCHEMA: &'static str = "obs_series/v1";

    /// An empty recorder whose delta baseline is the current obs state,
    /// so the first interval's deltas do not include prior work.
    #[must_use]
    pub fn new() -> Self {
        SeriesRecorder {
            names: Vec::new(),
            rows: Vec::new(),
            last: crate::snapshot(),
        }
    }

    /// Opens the row keyed by `interval`; subsequent [`set`](Self::set)
    /// calls land there.
    pub fn begin_interval(&mut self, interval: u64) {
        self.rows.push(Row {
            interval,
            values: Vec::new(),
        });
    }

    /// Sets the named column in the current row (last write wins).
    /// With no open row, one is opened keyed by the row count.
    pub fn set(&mut self, name: &str, value: f64) {
        if self.rows.is_empty() {
            let key = self.rows.len() as u64;
            self.begin_interval(key);
        }
        let col = match self.names.iter().position(|n| n == name) {
            Some(col) => col,
            None => {
                self.names.push(name.to_string());
                self.names.len() - 1
            }
        };
        if let Some(row) = self.rows.last_mut() {
            if row.values.len() <= col {
                row.values.resize(col + 1, None);
            }
            row.values[col] = Some(value);
        }
    }

    /// Captures what every obs span total and counter advanced by since
    /// the previous call (or since [`new`](Self::new)), as columns
    /// `span.<name>_ms` and `counter.<name>` in the current row. Rows
    /// record nothing in disabled builds (the snapshot is empty).
    pub fn snapshot_deltas(&mut self) {
        let snap = crate::snapshot();
        for span in &snap.spans {
            let prev = self.last.span_total_ns(&[span.name.as_str()]);
            let delta = span.total.saturating_sub(prev);
            if delta > 0 {
                self.set(&format!("span.{}_ms", span.name), delta as f64 / 1e6);
            }
        }
        for counter in &snap.counters {
            let delta = counter
                .value
                .saturating_sub(self.last.counter(&counter.name));
            if delta > 0 {
                self.set(&format!("counter.{}", counter.name), delta as f64);
            }
        }
        self.last = snap;
    }

    /// Number of recorded rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The named column over all rows (unset cells read 0.0), or `None`
    /// if the column was never set.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let col = self.names.iter().position(|n| n == name)?;
        Some(
            self.rows
                .iter()
                .map(|row| row.values.get(col).copied().flatten().unwrap_or(0.0))
                .collect(),
        )
    }

    /// Serializes deterministically (columns sorted by name, one row per
    /// recorded interval, unset cells as 0) to `obs_series/v1` JSON with
    /// a trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut order: Vec<usize> = (0..self.names.len()).collect();
        order.sort_by(|&a, &b| self.names[a].cmp(&self.names[b]));
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", Self::SCHEMA);
        w.field_bool("enabled", crate::enabled());
        w.field_u64("points", self.rows.len() as u64);
        w.key("intervals");
        w.begin_array();
        for row in &self.rows {
            w.value_u64(row.interval);
        }
        w.end_array();
        w.key("series");
        w.begin_array();
        for &col in &order {
            w.begin_object();
            w.field_str("name", &self.names[col]);
            w.key("values");
            w.begin_array();
            for row in &self.rows {
                let v = row.values.get(col).copied().flatten().unwrap_or(0.0);
                w.value_f64(v, 3);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut text = w.finish();
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_columns_and_backfill() {
        let mut rec = SeriesRecorder::new();
        rec.begin_interval(0);
        rec.set("users", 100.0);
        rec.begin_interval(1);
        rec.set("users", 120.0);
        rec.set("joins", 20.0);
        assert_eq!(rec.len(), 2);
        assert!(!rec.is_empty());
        assert_eq!(rec.column("users"), Some(vec![100.0, 120.0]));
        // Column added on row 1 backfills row 0 with 0.
        assert_eq!(rec.column("joins"), Some(vec![0.0, 20.0]));
        assert_eq!(rec.column("nope"), None);
    }

    #[test]
    fn set_without_interval_opens_a_row() {
        let mut rec = SeriesRecorder::new();
        rec.set("x", 1.0);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.column("x"), Some(vec![1.0]));
    }

    #[test]
    fn json_is_deterministic_sorted_and_well_formed() {
        let mut rec = SeriesRecorder::new();
        rec.begin_interval(7);
        rec.set("zeta", 2.5);
        rec.set("alpha", 1.0);
        let a = rec.to_json();
        let b = rec.clone().to_json();
        assert_eq!(a, b);
        assert!(crate::json::well_formed(&a));
        assert!(a.contains("\"schema\": \"obs_series/v1\""));
        assert!(a.contains("\"points\": 1"));
        // Columns sorted by name regardless of insertion order.
        let alpha = a.find("\"alpha\"").unwrap();
        let zeta = a.find("\"zeta\"").unwrap();
        assert!(alpha < zeta);
        assert!(a.ends_with('\n'));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn snapshot_deltas_capture_span_and_counter_advances() {
        let mut rec = SeriesRecorder::new();
        rec.begin_interval(0);
        {
            let _g = crate::span("test.series.stage");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        crate::counter_add("test.series.ctr", 5);
        rec.snapshot_deltas();
        rec.begin_interval(1);
        crate::counter_add("test.series.ctr", 2);
        rec.snapshot_deltas();
        let walls = rec
            .column("span.test.series.stage_ms")
            .expect("span column");
        assert!(walls[0] >= 1.0, "first interval wall: {walls:?}");
        let ctr = rec.column("counter.test.series.ctr").expect("ctr column");
        assert_eq!(ctr[1], 2.0, "second interval delta: {ctr:?}");
        assert!(crate::json::well_formed(&rec.to_json()));
    }
}
