//! The live metric registry (compiled only with the `enabled` feature).
//!
//! A process-global table of named series. Registration (first use of a
//! name) takes a write lock once; every recording afterwards is a read
//! lock plus a handful of relaxed atomic read-modify-writes on the slot,
//! so concurrent recorders never lose an observation — counts sum
//! exactly, which the concurrency tests pin down. Slots are leaked
//! (`Box::leak`) so recorded guards can hold `&'static` references
//! without reference counting; the set of distinct metric names bounds
//! the leak.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::hist::{bucket_of, quantile, BUCKETS};
use crate::{Metric, SeriesStats, Snapshot};

/// What a slot measures; decides the snapshot section it lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    /// Nanosecond durations recorded by span guards.
    SpanNs,
    /// Unit-free magnitudes recorded by `observe`.
    Value,
    /// Monotonic sum.
    Counter,
    /// Last-write-wins level.
    Gauge,
}

/// One named series: histogram statistics for spans/values, a single
/// atomic for counters/gauges (stored in `total`).
#[derive(Debug)]
pub(crate) struct Slot {
    name: &'static str,
    kind: Kind,
    count: AtomicU64,
    total: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Slot {
    /// The series name (used by span guards to emit trace end events).
    pub(crate) fn name(&self) -> &'static str {
        self.name
    }

    fn new(name: &'static str, kind: Kind) -> Self {
        let hist = matches!(kind, Kind::SpanNs | Kind::Value);
        Slot {
            name,
            kind,
            count: AtomicU64::new(0),
            total: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: if hist {
                (0..BUCKETS).map(|_| AtomicU64::new(0)).collect()
            } else {
                Vec::new()
            },
        }
    }

    /// Records one histogram observation.
    pub(crate) fn record(&self, value: u64) {
        // xcheck-ordering: independent monotonic stats; readers tolerate torn cross-field views
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(value, Ordering::Relaxed); // xcheck-ordering: same
        self.min.fetch_min(value, Ordering::Relaxed); // xcheck-ordering: same
        self.max.fetch_max(value, Ordering::Relaxed); // xcheck-ordering: same
        if let Some(bucket) = self.buckets.get(bucket_of(value)) {
            bucket.fetch_add(1, Ordering::Relaxed); // xcheck-ordering: same
        }
    }

    /// Adds to a counter.
    pub(crate) fn add(&self, delta: u64) {
        // xcheck-ordering: pure accumulators; no other memory is published through them
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(delta, Ordering::Relaxed); // xcheck-ordering: same
    }

    /// Sets a gauge.
    pub(crate) fn set(&self, value: u64) {
        // xcheck-ordering: last-writer-wins gauge; no cross-field invariant to order against
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.store(value, Ordering::Relaxed); // xcheck-ordering: same
    }

    fn reset(&self) {
        // xcheck-ordering: callers quiesce recorders before reset; no ordering can save a racing reset anyway
        self.count.store(0, Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed); // xcheck-ordering: same
        self.min.store(u64::MAX, Ordering::Relaxed); // xcheck-ordering: same
        self.max.store(0, Ordering::Relaxed); // xcheck-ordering: same
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed); // xcheck-ordering: same
        }
    }

    fn stats(&self) -> SeriesStats {
        // xcheck-ordering: snapshot reads are advisory; fields may tear between loads by design
        let count = self.count.load(Ordering::Relaxed);
        let min = if count == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed) // xcheck-ordering: same
        };
        let max = self.max.load(Ordering::Relaxed); // xcheck-ordering: same
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed)) // xcheck-ordering: same
            .collect();
        // Quantile estimates are bucket upper bounds; clamping into the
        // observed [min, max] tightens them for free (a single
        // observation reports itself exactly).
        let clamp = |v: u64| v.clamp(min, max.max(min));
        SeriesStats {
            name: self.name.to_string(),
            count,
            total: self.total.load(Ordering::Relaxed), // xcheck-ordering: same
            min,
            max,
            p50: clamp(quantile(&counts, 0.50)),
            p99: clamp(quantile(&counts, 0.99)),
        }
    }
}

static REGISTRY: OnceLock<RwLock<Vec<&'static Slot>>> = OnceLock::new();

fn read_slots() -> RwLockReadGuard<'static, Vec<&'static Slot>> {
    let lock = REGISTRY.get_or_init(|| RwLock::new(Vec::new()));
    match lock.read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn write_slots() -> RwLockWriteGuard<'static, Vec<&'static Slot>> {
    let lock = REGISTRY.get_or_init(|| RwLock::new(Vec::new()));
    match lock.write() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The slot registered under `name`, creating it with `kind` on first
/// use. A name keeps its original kind for the life of the process;
/// callers use one name per instrument.
pub(crate) fn slot(name: &'static str, kind: Kind) -> &'static Slot {
    if let Some(found) = read_slots().iter().find(|s| s.name == name) {
        return found;
    }
    let mut slots = write_slots();
    // Another thread may have registered the name between the locks.
    if let Some(found) = slots.iter().find(|s| s.name == name) {
        return found;
    }
    let slot: &'static Slot = Box::leak(Box::new(Slot::new(name, kind)));
    slots.push(slot);
    slot
}

/// Zeroes every registered series (names stay registered).
pub(crate) fn reset_all() {
    for slot in read_slots().iter() {
        slot.reset();
    }
}

/// A deterministic snapshot: every section sorted by name.
pub(crate) fn snapshot_all() -> Snapshot {
    let mut snap = Snapshot {
        enabled: true,
        ..Snapshot::default()
    };
    for slot in read_slots().iter() {
        match slot.kind {
            Kind::SpanNs => snap.spans.push(slot.stats()),
            Kind::Value => snap.values.push(slot.stats()),
            Kind::Counter => snap.counters.push(Metric {
                name: slot.name.to_string(),
                // xcheck-ordering: advisory snapshot read of a monotonic counter
                value: slot.total.load(Ordering::Relaxed),
            }),
            Kind::Gauge => snap.gauges.push(Metric {
                name: slot.name.to_string(),
                // xcheck-ordering: advisory snapshot read of a last-writer-wins gauge
                value: slot.total.load(Ordering::Relaxed),
            }),
        }
    }
    snap.spans.sort_by(|a, b| a.name.cmp(&b.name));
    snap.values.sort_by(|a, b| a.name.cmp(&b.name));
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}
