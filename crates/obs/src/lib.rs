//! Zero-dependency tracing + metrics for the rekey pipeline.
//!
//! The paper this workspace reproduces is a *performance analysis*:
//! server cost per stage, bandwidth overhead, rounds to success. This
//! crate gives every pipeline stage a first-class way to report where
//! the time and bytes actually go, with the same discipline as the
//! sibling `taskpool`/`xcheck` crates — no dependencies, deterministic
//! output, and zero cost when switched off.
//!
//! Four instruments:
//!
//! * **Spans** — [`span("stage.mark")`](span) returns a guard that
//!   records the enclosed wall time (monotonic clock) on drop. Guards
//!   nest freely; each records its own elapsed time. Aggregation is
//!   count / total / min / max plus p50/p99 from a fixed-bucket log2
//!   histogram ([`hist`]), so recording is allocation-free and O(1).
//! * **Values** — [`observe`] feeds unit-free magnitudes (tasks per
//!   worker, packets per round) into the same histogram machinery.
//! * **Counters** — [`counter_add`] monotonic sums (packets minted,
//!   bytes sealed, cache hits).
//! * **Gauges** — [`gauge_set`] last-write-wins levels (current worker
//!   count, parity ratio in parts-per-thousand).
//!
//! [`snapshot`] collects everything into a [`Snapshot`] that serializes
//! deterministically ([`Snapshot::to_json`], sections and entries sorted
//! by name) or renders as a human table ([`Snapshot::render_table`]).
//!
//! Two event-level layers build on the same instrumentation points:
//! [`trace`], a flight recorder that turns span begin/end into
//! per-thread event streams exportable as Chrome/Perfetto trace JSON,
//! and [`series`], an interval-keyed time-series recorder for
//! per-rekey-interval curves.
//!
//! # Feature gating
//!
//! Everything above is real only with the `enabled` cargo feature.
//! Without it every entry point compiles to an inlineable no-op: no
//! clock reads, no atomics, no heap allocation (a test pins the
//! off-path at exactly zero allocations), and [`snapshot`] returns an
//! empty [`Snapshot`]. Downstream crates expose an `obs` feature that
//! forwards to `obs/enabled`, so one `--features obs` at the workspace
//! root lights up the whole pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Fixed-bucket log2 histograms behind span/value aggregation.
pub mod hist;
/// Deterministic hand-rolled JSON writer shared with the bench emitters.
pub mod json;
/// Interval-keyed time-series recorder (`obs_series/v1`).
pub mod series;
/// Flight-recorder event tracing with Chrome/Perfetto export (`trace/v1`).
pub mod trace;

#[cfg(feature = "enabled")]
mod registry;

use json::JsonWriter;

/// Whether the metrics layer is compiled in (`enabled` cargo feature).
///
/// Binaries use this to fail fast when asked to emit observability data
/// from a build that cannot collect any.
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// Live guard of one span; records the elapsed nanoseconds on drop.
///
/// Hold it for the duration of the stage being measured:
///
/// ```
/// let _span = obs::span("stage.example");
/// // ... the work being timed ...
/// ```
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    slot: &'static registry::Slot,
    #[cfg(feature = "enabled")]
    start: std::time::Instant,
}

#[cfg(feature = "enabled")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.slot.record(ns);
        trace::span_end(self.slot.name());
    }
}

/// Starts a span named `name`; the returned guard records its wall time
/// into the span's histogram when dropped. Nested spans each record
/// their own elapsed time. While the flight recorder is on
/// ([`trace::enable`]), the guard also emits begin/end trace events, so
/// every instrumented stage shows up on its thread's track for free.
#[cfg(feature = "enabled")]
pub fn span(name: &'static str) -> SpanGuard {
    trace::span_begin(name);
    SpanGuard {
        slot: registry::slot(name, registry::Kind::SpanNs),
        start: std::time::Instant::now(),
    }
}

/// Starts a span named `name` (no-op: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
// xcheck: no_alloc
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard {}
}

/// Records one unit-free magnitude into the value histogram `name`.
#[cfg(feature = "enabled")]
pub fn observe(name: &'static str, value: u64) {
    registry::slot(name, registry::Kind::Value).record(value);
}

/// Records one magnitude (no-op: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
// xcheck: no_alloc
pub fn observe(_name: &'static str, _value: u64) {}

/// Adds `delta` to the counter `name`.
#[cfg(feature = "enabled")]
pub fn counter_add(name: &'static str, delta: u64) {
    registry::slot(name, registry::Kind::Counter).add(delta);
}

/// Adds to a counter (no-op: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
// xcheck: no_alloc
pub fn counter_add(_name: &'static str, _delta: u64) {}

/// Sets the gauge `name` to `value`.
#[cfg(feature = "enabled")]
pub fn gauge_set(name: &'static str, value: u64) {
    registry::slot(name, registry::Kind::Gauge).set(value);
}

/// Sets a gauge (no-op: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
// xcheck: no_alloc
pub fn gauge_set(_name: &'static str, _value: u64) {}

/// Zeroes every registered series (names stay registered). Benchmarks
/// call this between cells so each snapshot covers exactly one workload.
#[cfg(feature = "enabled")]
pub fn reset() {
    registry::reset_all();
}

/// Zeroes every series (no-op: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn reset() {}

/// Collects a deterministic snapshot of every registered series.
#[cfg(feature = "enabled")]
#[must_use]
pub fn snapshot() -> Snapshot {
    registry::snapshot_all()
}

/// Collects a snapshot (always empty: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
#[must_use]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Aggregated statistics of one span or value series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesStats {
    /// Series name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations (nanoseconds for spans).
    pub total: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median estimate (log2-bucket upper bound, clamped to [min, max]).
    pub p50: u64,
    /// 99th-percentile estimate (same construction as `p50`).
    pub p99: u64,
}

/// One counter or gauge reading.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metric {
    /// Metric name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// Point-in-time copy of every registered series, sections and entries
/// sorted by name so two snapshots of identical state serialize to
/// identical bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Whether the producing build had the metrics layer compiled in.
    pub enabled: bool,
    /// Span (duration) series, sorted by name; all fields nanoseconds.
    pub spans: Vec<SeriesStats>,
    /// Value (magnitude) series, sorted by name.
    pub values: Vec<SeriesStats>,
    /// Counters, sorted by name.
    pub counters: Vec<Metric>,
    /// Gauges, sorted by name.
    pub gauges: Vec<Metric>,
}

impl Snapshot {
    /// Schema tag written into the JSON form.
    pub const SCHEMA: &'static str = "obs/v1";

    /// Sum of `total` over the named span series (nanoseconds). Missing
    /// names contribute zero — convenient for stage-coverage arithmetic.
    #[must_use]
    pub fn span_total_ns(&self, names: &[&str]) -> u64 {
        self.spans
            .iter()
            .filter(|s| names.contains(&s.name.as_str()))
            .map(|s| s.total)
            .sum()
    }

    /// The named span series, if present.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SeriesStats> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The named counter value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Serializes deterministically to a single-line JSON object (plus a
    /// trailing newline), schema `obs/v1`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", Self::SCHEMA);
        w.field_bool("enabled", self.enabled);
        for (key, series, ns) in [
            ("spans", &self.spans, true),
            ("values", &self.values, false),
        ] {
            w.key(key);
            w.begin_array();
            for s in series {
                w.begin_object();
                w.field_str("name", &s.name);
                w.field_u64("count", s.count);
                let suffix = if ns { "_ns" } else { "" };
                for (stat, v) in [
                    ("total", s.total),
                    ("min", s.min),
                    ("max", s.max),
                    ("p50", s.p50),
                    ("p99", s.p99),
                ] {
                    w.field_u64(&format!("{stat}{suffix}"), v);
                }
                w.end_object();
            }
            w.end_array();
        }
        for (key, metrics) in [("counters", &self.counters), ("gauges", &self.gauges)] {
            w.key(key);
            w.begin_array();
            for m in metrics {
                w.begin_object();
                w.field_str("name", &m.name);
                w.field_u64("value", m.value);
                w.end_object();
            }
            w.end_array();
        }
        w.end_object();
        let mut text = w.finish();
        text.push('\n');
        text
    }

    /// Renders a fixed-width human table (one block per non-empty
    /// section). Callers print it to stderr under one lock so it never
    /// interleaves with other diagnostics.
    #[must_use]
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.enabled {
            out.push_str("obs: disabled (rebuild with --features obs)\n");
            return out;
        }
        let ms = |ns: u64| ns as f64 / 1e6;
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "obs spans                        count    total_ms      p50_ms      p99_ms      max_ms"
            );
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>8} {:>11.3} {:>11.3} {:>11.3} {:>11.3}",
                    s.name,
                    s.count,
                    ms(s.total),
                    ms(s.p50),
                    ms(s.p99),
                    ms(s.max),
                );
            }
        }
        if !self.values.is_empty() {
            let _ = writeln!(
                out,
                "obs values                       count       total         p50         p99         max"
            );
            for s in &self.values {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>8} {:>11} {:>11} {:>11} {:>11}",
                    s.name, s.count, s.total, s.p50, s.p99, s.max,
                );
            }
        }
        for (title, metrics) in [
            ("obs counters", &self.counters),
            ("obs gauges", &self.gauges),
        ] {
            if metrics.is_empty() {
                continue;
            }
            let _ = writeln!(out, "{title}");
            for m in metrics {
                let _ = writeln!(out, "  {:<28} {:>20}", m.name, m.value);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            enabled: true,
            spans: vec![SeriesStats {
                name: "stage.mark".to_string(),
                count: 3,
                total: 3_000_000,
                min: 900_000,
                max: 1_200_000,
                p50: 1_000_000,
                p99: 1_200_000,
            }],
            values: vec![SeriesStats {
                name: "taskpool.tasks_per_worker".to_string(),
                count: 4,
                total: 64,
                min: 12,
                max: 20,
                p50: 15,
                p99: 20,
            }],
            counters: vec![Metric {
                name: "uka.keys_sealed".to_string(),
                value: 171,
            }],
            gauges: vec![Metric {
                name: "taskpool.workers".to_string(),
                value: 4,
            }],
        }
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let snap = sample();
        let a = snap.to_json();
        let b = snap.clone().to_json();
        assert_eq!(a, b);
        assert!(json::well_formed(&a));
        assert!(a.contains("\"schema\": \"obs/v1\""));
        assert!(a.contains("\"name\": \"stage.mark\""));
        assert!(a.contains("\"total_ns\": 3000000"));
        assert!(a.contains("\"uka.keys_sealed\""));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn table_lists_every_section() {
        let table = sample().render_table();
        assert!(table.contains("stage.mark"));
        assert!(table.contains("taskpool.tasks_per_worker"));
        assert!(table.contains("uka.keys_sealed"));
        assert!(table.contains("taskpool.workers"));
        assert!(table.lines().all(|l| !l.is_empty()));
    }

    #[test]
    fn helpers_tolerate_missing_names() {
        let snap = sample();
        assert_eq!(snap.span_total_ns(&["stage.mark", "stage.none"]), 3_000_000);
        assert!(snap.span("stage.none").is_none());
        assert_eq!(snap.counter("uka.keys_sealed"), 171);
        assert_eq!(snap.counter("nope"), 0);
    }

    #[test]
    fn disabled_snapshot_renders_hint() {
        let table = Snapshot::default().render_table();
        assert!(table.contains("disabled"));
    }

    #[cfg(feature = "enabled")]
    mod live {
        // Global-registry behavior; each test uses its own metric names
        // so parallel test threads cannot interfere.
        #[test]
        fn span_guard_records_on_drop() {
            {
                let _g = crate::span("test.lib.span_drop");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let snap = crate::snapshot();
            let s = snap.span("test.lib.span_drop").expect("registered");
            assert_eq!(s.count, 1);
            assert!(s.total >= 1_000_000, "slept >= 1ms, got {} ns", s.total);
            assert!(s.min <= s.p50 && s.p50 <= s.p99 && s.p99 <= s.max);
        }

        #[test]
        fn counters_gauges_and_values_accumulate() {
            crate::counter_add("test.lib.ctr", 2);
            crate::counter_add("test.lib.ctr", 3);
            crate::gauge_set("test.lib.gauge", 7);
            crate::gauge_set("test.lib.gauge", 9);
            crate::observe("test.lib.val", 16);
            crate::observe("test.lib.val", 64);
            let snap = crate::snapshot();
            assert_eq!(snap.counter("test.lib.ctr"), 5);
            let gauge = snap
                .gauges
                .iter()
                .find(|g| g.name == "test.lib.gauge")
                .expect("gauge registered");
            assert_eq!(gauge.value, 9);
            let val = snap
                .values
                .iter()
                .find(|v| v.name == "test.lib.val")
                .expect("value registered");
            assert_eq!((val.count, val.total, val.min, val.max), (2, 80, 16, 64));
        }
    }
}
