//! Flight-recorder event tracing: per-thread bounded ring buffers of
//! timestamped span begin/end and instant events, drained into one
//! deterministic merged stream and exported as Chrome trace-event JSON
//! (`trace/v1`, loadable in Perfetto or `chrome://tracing`).
//!
//! The aggregate instruments in the crate root answer "how much time
//! did stage X take in total"; the recorder answers "*when* did every
//! stage run, on which worker" — which is what makes the streamed
//! mint→seal→plan→encode pipeline overlap visible as parallel tracks
//! instead of a single gauge.
//!
//! # Recording model
//!
//! * Recording is **off by default**, even in `enabled` builds. A call
//!   to [`enable`] fixes the trace epoch and opens recording; all
//!   timestamps are nanoseconds since that epoch.
//! * Each recording thread owns one **bounded ring** of `(t, meta)`
//!   slot pairs. The owning thread is the only writer; the cursor and
//!   slots are relaxed atomics so [`drain`] can read them without
//!   `unsafe` after writers quiesce (the taskpool joins every worker
//!   scope before any drain). Overflow keeps the oldest events and
//!   counts the drops ([`TrackInfo::dropped`], gated to zero by the
//!   overhead bench) — a truncated-but-consistent prefix beats a
//!   wrapped trace with dangling span ends.
//! * The hot path ([`instant`], span begin/end via [`crate::span`]) is
//!   **zero steady-state allocation**: names are interned once into a
//!   process-global table and cached per thread, so after warm-up an
//!   event is a clock read plus two relaxed stores.
//! * Rings outlive their threads (a drained trace includes joined
//!   workers) and are **adopted** by later threads: a fresh worker
//!   claims the lowest-numbered free ring, so repeated rekeys reuse the
//!   same small track set instead of growing one track per short-lived
//!   thread.
//!
//! Without the `enabled` cargo feature every entry point is an
//! inlineable no-op and [`drain`] returns an empty [`Trace`]; the data
//! model and export below stay available so tooling compiles either way.

use crate::json::JsonWriter;

// ---------------------------------------------------------------------------
// Data model (available with and without the `enabled` feature)
// ---------------------------------------------------------------------------

/// What one recorded event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (matching [`EventKind::End`] closes it, LIFO per track).
    Begin,
    /// A span closed.
    End,
    /// A point-in-time marker.
    Instant,
}

/// One event of the drained, merged stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Track (ring) the event was recorded on.
    pub track: u32,
    /// Nanoseconds since the [`enable`] epoch.
    pub t_ns: u64,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Span or marker name.
    pub name: String,
}

/// One track (per-thread ring) present in a drained trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackInfo {
    /// Stable track id (ring creation order; doubles as the Chrome `tid`).
    pub track: u32,
    /// Human label, e.g. `pipe-1` (see [`set_thread_track`]).
    pub label: String,
    /// Events drained from this track.
    pub events: u64,
    /// Events lost to ring overflow on this track.
    pub dropped: u64,
}

/// A drained trace: the merged event stream plus per-track metadata.
///
/// The merge is deterministic given the recorded events: sorted by
/// `(t_ns, track, position-in-ring)`, which preserves each track's own
/// recording order exactly (per-track timestamps are monotone because
/// each ring has a single writing thread and a monotonic clock).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All events, merged and sorted as described above.
    pub events: Vec<TraceEvent>,
    /// Tracks that contributed at least one event, by track id.
    pub tracks: Vec<TrackInfo>,
}

impl Trace {
    /// Schema tag written into the Chrome JSON form.
    pub const SCHEMA: &'static str = "trace/v1";

    /// Total events lost to ring overflow across all tracks.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// Matched `[begin, end)` intervals of every span named `name`,
    /// across all tracks, in deterministic (track, begin-order) order.
    ///
    /// Matching is LIFO per track, mirroring guard nesting. A begin
    /// with no recorded end (ring overflow, or recording switched off
    /// mid-span) closes at the track's last event timestamp; an end
    /// with no begin is dropped.
    #[must_use]
    pub fn span_intervals(&self, name: &str) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for info in &self.tracks {
            let mut stack: Vec<u64> = Vec::new();
            let mut last_t = 0u64;
            for ev in self.events.iter().filter(|e| e.track == info.track) {
                last_t = last_t.max(ev.t_ns);
                if ev.name != name {
                    continue;
                }
                match ev.kind {
                    EventKind::Begin => stack.push(ev.t_ns),
                    EventKind::End => {
                        if let Some(begin) = stack.pop() {
                            out.push((begin, ev.t_ns));
                        }
                    }
                    EventKind::Instant => {}
                }
            }
            for begin in stack {
                out.push((begin, last_t.max(begin)));
            }
        }
        out
    }

    /// The `[first begin, last end]` activity window of the named span
    /// over the whole trace, or `None` if it never ran.
    #[must_use]
    pub fn span_window(&self, name: &str) -> Option<(u64, u64)> {
        let intervals = self.span_intervals(name);
        let lo = intervals.iter().map(|&(b, _)| b).min()?;
        let hi = intervals.iter().map(|&(_, e)| e).max()?;
        Some((lo, hi))
    }

    /// Exports the trace as Chrome trace-event JSON (the `traceEvents`
    /// array format), loadable in Perfetto and `chrome://tracing`.
    ///
    /// One Chrome thread per track (`pid` 1, `tid` = track id), with a
    /// `thread_name` metadata record carrying the track label.
    /// Timestamps are microseconds with nanosecond precision (three
    /// decimals). Per-track nesting is repaired the same way
    /// [`Trace::span_intervals`] does: stray ends are skipped, ends
    /// missing after overflow are synthesized at the track's last
    /// timestamp, so the export always nests properly.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        // (t_ns, track, seq, kind, name); synthetic closes get seq
        // u64::MAX so they sort after everything else at the same time.
        let mut rows: Vec<(u64, u32, u64, EventKind, &str)> = Vec::new();
        for info in &self.tracks {
            let mut stack: Vec<&TraceEvent> = Vec::new();
            let mut last_t = 0u64;
            let mut seq = 0u64;
            for ev in self.events.iter().filter(|e| e.track == info.track) {
                last_t = last_t.max(ev.t_ns);
                match ev.kind {
                    EventKind::Begin => {
                        stack.push(ev);
                        rows.push((ev.t_ns, ev.track, seq, ev.kind, &ev.name));
                    }
                    EventKind::End => {
                        // Close intervening unmatched begins (recording
                        // toggles can orphan them) so B/E stay LIFO.
                        if stack.iter().any(|b| b.name == ev.name) {
                            while let Some(open) = stack.pop() {
                                rows.push((ev.t_ns, ev.track, seq, EventKind::End, &open.name));
                                seq += 1;
                                if open.name == ev.name {
                                    break;
                                }
                            }
                        }
                    }
                    EventKind::Instant => {
                        rows.push((ev.t_ns, ev.track, seq, ev.kind, &ev.name));
                    }
                }
                seq += 1;
            }
            while let Some(open) = stack.pop() {
                rows.push((last_t, info.track, u64::MAX, EventKind::End, &open.name));
            }
        }
        rows.sort_by_key(|a| (a.0, a.1, a.2));

        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", Self::SCHEMA);
        w.field_u64("dropped", self.dropped_total());
        w.key("traceEvents");
        w.begin_array();
        for info in &self.tracks {
            w.begin_object();
            w.field_str("ph", "M");
            w.field_str("name", "thread_name");
            w.field_u64("pid", 1);
            w.field_u64("tid", u64::from(info.track));
            w.key("args");
            w.begin_object();
            w.field_str("name", &info.label);
            w.end_object();
            w.end_object();
        }
        for (t_ns, track, _, kind, name) in rows {
            w.begin_object();
            let ph = match kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "i",
            };
            w.field_str("ph", ph);
            w.field_str("name", name);
            w.field_str("cat", "rekey");
            w.field_u64("pid", 1);
            w.field_u64("tid", u64::from(track));
            w.key("ts");
            w.value_f64(t_ns as f64 / 1000.0, 3);
            if matches!(kind, EventKind::Instant) {
                w.field_str("s", "t");
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut text = w.finish();
        text.push('\n');
        text
    }
}

/// Total nanoseconds covered by the union of `intervals` (half-open
/// `[begin, end)` pairs; overlaps and duplicates count once).
#[must_use]
pub fn union_ns(intervals: &[(u64, u64)]) -> u64 {
    let mut sorted: Vec<(u64, u64)> = intervals.iter().copied().filter(|&(b, e)| e > b).collect();
    sorted.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (b, e) in sorted {
        match cur {
            Some((cb, ce)) if b <= ce => cur = Some((cb, ce.max(e))),
            Some((cb, ce)) => {
                total += ce - cb;
                cur = Some((b, e));
            }
            None => cur = Some((b, e)),
        }
    }
    if let Some((cb, ce)) = cur {
        total += ce - cb;
    }
    total
}

/// Nanoseconds during which **at least two distinct stages** are
/// simultaneously active, where each element of `stages` is one stage's
/// set of activity intervals.
///
/// Within a stage, intervals are unioned first, so two of a stage's own
/// workers running concurrently do not count as overlap. Passing each
/// stage as a single `[first, last]` window reproduces the coarse
/// window-based inclusion–exclusion that `StreamStats::overlap_ns`
/// uses; passing the exact per-span intervals yields the exact
/// event-derived overlap.
#[must_use]
pub fn multi_stage_overlap_ns(stages: &[Vec<(u64, u64)>]) -> u64 {
    // Boundary sweep: +1 when any merged interval of a stage opens,
    // -1 when it closes; accumulate time while >= 2 stages are active.
    let mut bounds: Vec<(u64, i32)> = Vec::new();
    for stage in stages {
        for (b, e) in merged(stage) {
            bounds.push((b, 1));
            bounds.push((e, -1));
        }
    }
    bounds.sort_unstable();
    let mut active = 0i32;
    let mut overlap = 0u64;
    let mut prev = 0u64;
    for (t, delta) in bounds {
        if active >= 2 {
            overlap += t - prev;
        }
        active += delta;
        prev = t;
    }
    overlap
}

/// Union-merges one stage's intervals into disjoint sorted intervals.
fn merged(intervals: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut sorted: Vec<(u64, u64)> = intervals.iter().copied().filter(|&(b, e)| e > b).collect();
    sorted.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (b, e) in sorted {
        match out.last_mut() {
            Some(last) if b <= last.1 => last.1 = last.1.max(e),
            _ => out.push((b, e)),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Live recorder (enabled builds)
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod rec {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
    use std::time::Instant;

    use super::{EventKind, Trace, TraceEvent, TrackInfo};

    /// Default ring capacity: events per thread before overflow. One
    /// streamed 2^20 rekey records a few thousand events per thread.
    pub(super) const DEFAULT_CAPACITY: usize = 1 << 14;

    const KIND_BEGIN: u64 = 0;
    const KIND_END: u64 = 1;
    const KIND_INSTANT: u64 = 2;

    // xcheck-ordering: recording on/off is an advisory latch; events racing
    // a toggle may be kept or lost either way, which drain tolerates
    static RECORDING: AtomicBool = AtomicBool::new(false);
    // xcheck-ordering: capacity is read once per ring creation; any
    // in-flight value is a valid capacity
    static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    static NAMES: OnceLock<RwLock<Vec<&'static str>>> = OnceLock::new();

    /// One event slot: timestamp plus `(name_id << 2) | kind`.
    struct Slot {
        t: AtomicU64,
        meta: AtomicU64,
    }

    /// One per-thread bounded ring. The claiming thread is the only
    /// writer; everything is atomics so the (post-quiesce) drain can
    /// read without `unsafe`.
    struct Ring {
        track: u32,
        label: Mutex<String>,
        slots: Box<[Slot]>,
        /// Events written so far (never exceeds `slots.len()`).
        head: AtomicUsize,
        /// Events rejected because the ring was full.
        dropped: AtomicU64,
        /// Claimed by a live thread (freed on thread exit).
        in_use: AtomicBool,
    }

    impl Ring {
        fn new(track: u32, capacity: usize) -> Self {
            let mut slots = Vec::with_capacity(capacity);
            for _ in 0..capacity {
                slots.push(Slot {
                    t: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                });
            }
            Ring {
                track,
                label: Mutex::new(format!("thread-{track}")),
                slots: slots.into_boxed_slice(),
                head: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
                in_use: AtomicBool::new(true),
            }
        }

        // xcheck: no_alloc
        fn push(&self, t: u64, meta: u64) {
            // xcheck-ordering: single-writer ring; drains run only after the writer quiesces, so cursor and slots need no publication ordering
            let h = self.head.load(Ordering::Relaxed);
            if h >= self.slots.len() {
                self.dropped.fetch_add(1, Ordering::Relaxed); // xcheck-ordering: same
                return;
            }
            if let Some(slot) = self.slots.get(h) {
                slot.t.store(t, Ordering::Relaxed); // xcheck-ordering: same
                slot.meta.store(meta, Ordering::Relaxed); // xcheck-ordering: same
            }
            self.head.store(h + 1, Ordering::Relaxed); // xcheck-ordering: same
        }
    }

    /// The calling thread's claim on a ring plus its private name cache
    /// (interned ids keyed by the `&'static str` data pointer, so the
    /// steady state takes no locks).
    struct Local {
        ring: Arc<Ring>,
        names: Vec<(usize, u32)>,
    }

    impl Drop for Local {
        fn drop(&mut self) {
            // xcheck-ordering: advisory free flag; claimers serialize on the registry mutex
            self.ring.in_use.store(false, Ordering::Relaxed);
        }
    }

    thread_local! {
        static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
    }

    fn rings() -> MutexGuard<'static, Vec<Arc<Ring>>> {
        let lock = RINGS.get_or_init(|| Mutex::new(Vec::new()));
        match lock.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Claims the lowest-numbered free ring, or creates one.
    #[cold]
    fn claim_ring() -> Arc<Ring> {
        let mut rings = rings();
        for ring in rings.iter() {
            // xcheck-ordering: the registry mutex serializes claimers; the flag is only advisory against the owner's release
            if !ring.in_use.load(Ordering::Relaxed) {
                ring.in_use.store(true, Ordering::Relaxed); // xcheck-ordering: same
                if let Ok(mut label) = ring.label.lock() {
                    *label = format!("thread-{}", ring.track);
                }
                return Arc::clone(ring);
            }
        }
        let track = u32::try_from(rings.len()).unwrap_or(u32::MAX);
        // xcheck-ordering: single racy read of a configuration cell
        let ring = Arc::new(Ring::new(track, CAPACITY.load(Ordering::Relaxed)));
        rings.push(Arc::clone(&ring));
        ring
    }

    #[cold]
    fn init_local(slot: &mut Option<Local>) {
        if slot.is_none() {
            *slot = Some(Local {
                ring: claim_ring(),
                names: Vec::with_capacity(32),
            });
        }
    }

    /// Interns `name`, registering it on first global sight.
    #[cold]
    fn intern_miss(local: &mut Local, name: &'static str) -> u32 {
        let lock = NAMES.get_or_init(|| RwLock::new(Vec::new()));
        let id = 'id: {
            if let Ok(names) = lock.read() {
                if let Some(i) = names.iter().position(|&n| n == name) {
                    break 'id u32::try_from(i).unwrap_or(0);
                }
            }
            match lock.write() {
                Ok(mut names) => {
                    if let Some(i) = names.iter().position(|&n| n == name) {
                        u32::try_from(i).unwrap_or(0)
                    } else {
                        names.push(name);
                        u32::try_from(names.len() - 1).unwrap_or(0)
                    }
                }
                Err(_) => 0,
            }
        };
        local.names.push((name.as_ptr() as usize, id));
        id
    }

    // xcheck: no_alloc
    fn cached_id(names: &[(usize, u32)], name: &'static str) -> Option<u32> {
        let key = name.as_ptr() as usize;
        names
            .iter()
            .find(|&&(ptr, _)| ptr == key)
            .map(|&(_, id)| id)
    }

    // xcheck: no_alloc
    pub(super) fn record(kind: u64, name: &'static str) {
        // xcheck-ordering: advisory recording latch (see declaration)
        if !RECORDING.load(Ordering::Relaxed) {
            return;
        }
        let t = now_ns();
        // try_with: events fired during thread teardown are dropped
        // rather than aborting.
        let _ = LOCAL.try_with(|cell| {
            if let Ok(mut borrow) = cell.try_borrow_mut() {
                if borrow.is_none() {
                    init_local(&mut borrow);
                }
                let Some(local) = borrow.as_mut() else {
                    return;
                };
                let id = match cached_id(&local.names, name) {
                    Some(id) => id,
                    None => intern_miss(local, name),
                };
                local.ring.push(t, (u64::from(id) << 2) | kind);
            }
        });
    }

    // xcheck: no_alloc
    fn now_ns() -> u64 {
        let epoch = EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    // xcheck: no_alloc
    pub(super) fn span_begin(name: &'static str) {
        record(KIND_BEGIN, name);
    }

    // xcheck: no_alloc
    pub(super) fn span_end(name: &'static str) {
        record(KIND_END, name);
    }

    // xcheck: no_alloc
    pub(super) fn instant(name: &'static str) {
        record(KIND_INSTANT, name);
    }

    pub(super) fn enable(capacity: usize) {
        let _ = EPOCH.get_or_init(Instant::now);
        // xcheck-ordering: configuration cells; see declarations
        CAPACITY.store(capacity.max(16), Ordering::Relaxed);
        RECORDING.store(true, Ordering::Relaxed); // xcheck-ordering: same
    }

    pub(super) fn disable() {
        // xcheck-ordering: advisory recording latch (see declaration)
        RECORDING.store(false, Ordering::Relaxed);
    }

    pub(super) fn is_recording() -> bool {
        // xcheck-ordering: advisory recording latch (see declaration)
        RECORDING.load(Ordering::Relaxed)
    }

    pub(super) fn set_thread_track(role: &'static str, index: u32) {
        if !is_recording() {
            return;
        }
        let _ = LOCAL.try_with(|cell| {
            if let Ok(mut borrow) = cell.try_borrow_mut() {
                if borrow.is_none() {
                    init_local(&mut borrow);
                }
                let Some(local) = borrow.as_mut() else {
                    return;
                };
                if let Ok(mut label) = local.ring.label.lock() {
                    label.clear();
                    label.push_str(role);
                    label.push('-');
                    let mut buf = [0u8; 10];
                    label.push_str(format_u32(index, &mut buf));
                }
            }
        });
    }

    /// Formats `v` into `buf`, returning the textual slice.
    fn format_u32(v: u32, buf: &mut [u8; 10]) -> &str {
        let mut i = buf.len();
        let mut v = v;
        loop {
            i -= 1;
            buf[i] = b'0' + u8::try_from(v % 10).unwrap_or(0);
            v /= 10;
            if v == 0 {
                break;
            }
        }
        std::str::from_utf8(&buf[i..]).unwrap_or("0")
    }

    pub(super) fn drain() -> Trace {
        let name_table: Vec<&'static str> =
            match NAMES.get_or_init(|| RwLock::new(Vec::new())).read() {
                Ok(names) => names.clone(),
                Err(_) => Vec::new(),
            };
        let mut trace = Trace::default();
        // (t, track, ring position) is the deterministic merge key.
        let mut keyed: Vec<(u64, u32, usize, EventKind, u32)> = Vec::new();
        for ring in rings().iter() {
            // xcheck-ordering: drain runs after writers quiesce (see Ring)
            let n = ring.head.load(Ordering::Relaxed).min(ring.slots.len());
            let dropped = ring.dropped.load(Ordering::Relaxed); // xcheck-ordering: same
            if n == 0 && dropped == 0 {
                continue;
            }
            for (pos, slot) in ring.slots.iter().take(n).enumerate() {
                let t = slot.t.load(Ordering::Relaxed); // xcheck-ordering: same
                let meta = slot.meta.load(Ordering::Relaxed); // xcheck-ordering: same
                let kind = match meta & 0b11 {
                    KIND_BEGIN => EventKind::Begin,
                    KIND_END => EventKind::End,
                    _ => EventKind::Instant,
                };
                let id = usize::try_from(meta >> 2).unwrap_or(usize::MAX);
                keyed.push((
                    t,
                    ring.track,
                    pos,
                    kind,
                    u32::try_from(id).unwrap_or(u32::MAX),
                ));
            }
            let label = match ring.label.lock() {
                Ok(label) => label.clone(),
                Err(_) => String::new(),
            };
            trace.tracks.push(TrackInfo {
                track: ring.track,
                label,
                events: n as u64,
                dropped,
            });
        }
        keyed.sort_unstable_by_key(|a| (a.0, a.1, a.2));
        trace.events = keyed
            .into_iter()
            .map(|(t_ns, track, _, kind, id)| TraceEvent {
                track,
                t_ns,
                kind,
                name: name_table
                    .get(id as usize)
                    .copied()
                    .unwrap_or("?")
                    .to_string(),
            })
            .collect();
        trace.tracks.sort_by_key(|t| t.track);
        trace
    }

    pub(super) fn clear() {
        for ring in rings().iter() {
            // xcheck-ordering: clear runs with recorders quiesced, like reset
            ring.head.store(0, Ordering::Relaxed);
            ring.dropped.store(0, Ordering::Relaxed); // xcheck-ordering: same
        }
    }
}

// ---------------------------------------------------------------------------
// Public recording API
// ---------------------------------------------------------------------------

/// Opens recording: fixes the trace epoch (first call only) and sets the
/// per-thread ring capacity for rings created afterwards.
///
/// Recording is off by default even in `enabled` builds, so binaries can
/// compare instrumented-but-idle against actively-recording runs.
#[cfg(feature = "enabled")]
pub fn enable(capacity_per_thread: usize) {
    rec::enable(capacity_per_thread);
}

/// Opens recording (no-op: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
// xcheck: no_alloc
pub fn enable(_capacity_per_thread: usize) {}

/// Default per-thread ring capacity for [`enable`].
#[cfg(feature = "enabled")]
pub const DEFAULT_CAPACITY: usize = rec::DEFAULT_CAPACITY;

/// Default per-thread ring capacity for [`enable`].
#[cfg(not(feature = "enabled"))]
pub const DEFAULT_CAPACITY: usize = 1 << 14;

/// Stops recording; already-recorded events stay drainable.
#[cfg(feature = "enabled")]
pub fn disable() {
    rec::disable();
}

/// Stops recording (no-op: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
// xcheck: no_alloc
pub fn disable() {}

/// Whether recording is currently open.
#[cfg(feature = "enabled")]
#[must_use]
pub fn is_recording() -> bool {
    rec::is_recording()
}

/// Whether recording is currently open (always `false`: feature off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
#[must_use]
// xcheck: no_alloc
pub fn is_recording() -> bool {
    false
}

/// Records a point-in-time marker on the calling thread's track.
#[cfg(feature = "enabled")]
pub fn instant(name: &'static str) {
    rec::instant(name);
}

/// Records a marker (no-op: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
// xcheck: no_alloc
pub fn instant(_name: &'static str) {}

/// Labels the calling thread's track as `role-index` (e.g. `pipe-1`),
/// claiming a track if the thread has none yet. No-op while recording
/// is off, so idle worker spawns cost nothing.
#[cfg(feature = "enabled")]
pub fn set_thread_track(role: &'static str, index: u32) {
    rec::set_thread_track(role, index);
}

/// Labels the calling thread's track (no-op: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
// xcheck: no_alloc
pub fn set_thread_track(_role: &'static str, _index: u32) {}

/// Drains every ring into one deterministic merged [`Trace`]. Call with
/// recorders quiesced (all worker scopes joined) — typically right after
/// [`disable`].
#[cfg(feature = "enabled")]
#[must_use]
pub fn drain() -> Trace {
    rec::drain()
}

/// Drains the recorder (always empty: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
#[must_use]
pub fn drain() -> Trace {
    Trace::default()
}

/// Rewinds every ring to empty (track ids and labels survive). Like
/// [`crate::reset`], callers quiesce recorders first.
#[cfg(feature = "enabled")]
pub fn clear() {
    rec::clear();
}

/// Rewinds the recorder (no-op: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn clear() {}

/// Span-begin hook for [`crate::span`] (crate-internal).
#[cfg(feature = "enabled")]
// xcheck: no_alloc
pub(crate) fn span_begin(name: &'static str) {
    rec::span_begin(name);
}

/// Span-end hook for [`crate::SpanGuard`] (crate-internal).
#[cfg(feature = "enabled")]
// xcheck: no_alloc
pub(crate) fn span_end(name: &'static str) {
    rec::span_end(name);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(track: u32, t_ns: u64, kind: EventKind, name: &str) -> TraceEvent {
        TraceEvent {
            track,
            t_ns,
            kind,
            name: name.to_string(),
        }
    }

    fn two_track_trace() -> Trace {
        Trace {
            events: vec![
                ev(0, 100, EventKind::Begin, "stage.mint"),
                ev(1, 150, EventKind::Begin, "stage.seal"),
                ev(0, 300, EventKind::End, "stage.mint"),
                ev(1, 400, EventKind::End, "stage.seal"),
                ev(0, 500, EventKind::Instant, "mark"),
            ],
            tracks: vec![
                TrackInfo {
                    track: 0,
                    label: "main-0".to_string(),
                    events: 3,
                    dropped: 0,
                },
                TrackInfo {
                    track: 1,
                    label: "pipe-0".to_string(),
                    events: 2,
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn span_intervals_match_lifo_and_close_orphans() {
        let trace = Trace {
            events: vec![
                ev(0, 10, EventKind::Begin, "a"),
                ev(0, 20, EventKind::Begin, "a"),
                ev(0, 30, EventKind::End, "a"),
                ev(0, 90, EventKind::Instant, "x"),
            ],
            tracks: vec![TrackInfo {
                track: 0,
                label: String::new(),
                events: 4,
                dropped: 0,
            }],
        };
        // Inner (20,30) matches; outer begin at 10 closes at last t (90).
        assert_eq!(trace.span_intervals("a"), vec![(20, 30), (10, 90)]);
        assert_eq!(trace.span_window("a"), Some((10, 90)));
        assert_eq!(trace.span_window("nope"), None);
    }

    #[test]
    fn union_and_overlap_arithmetic() {
        assert_eq!(union_ns(&[(0, 10), (5, 20), (30, 40)]), 30);
        assert_eq!(union_ns(&[]), 0);
        // Stage A [0,100), stage B [50,150): overlap 50.
        assert_eq!(
            multi_stage_overlap_ns(&[vec![(0, 100)], vec![(50, 150)]]),
            50
        );
        // Intra-stage concurrency is not overlap.
        assert_eq!(
            multi_stage_overlap_ns(&[vec![(0, 100), (10, 90)], vec![(200, 300)]]),
            0
        );
        // Three stages all active in [40,60): still counted once.
        assert_eq!(
            multi_stage_overlap_ns(&[vec![(0, 60)], vec![(40, 100)], vec![(40, 60)]]),
            20
        );
    }

    #[test]
    fn chrome_export_is_well_formed_and_labeled() {
        let json = two_track_trace().to_chrome_json();
        assert!(crate::json::well_formed(&json));
        assert!(json.contains("\"schema\": \"trace/v1\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"main-0\""));
        assert!(json.contains("\"pipe-0\""));
        assert!(json.contains("\"ph\": \"B\""));
        assert!(json.contains("\"ph\": \"E\""));
        assert!(json.contains("\"ph\": \"i\""));
        // 100 ns -> 0.100 us.
        assert!(json.contains("\"ts\": 0.100"));
    }

    #[test]
    fn chrome_export_synthesizes_missing_ends() {
        let trace = Trace {
            events: vec![
                ev(0, 10, EventKind::Begin, "open"),
                ev(0, 50, EventKind::Instant, "late"),
                ev(0, 60, EventKind::End, "stray"),
            ],
            tracks: vec![TrackInfo {
                track: 0,
                label: "t".to_string(),
                events: 3,
                dropped: 1,
            }],
        };
        let json = trace.to_chrome_json();
        assert!(crate::json::well_formed(&json));
        // The unmatched begin gains a synthetic E; the stray end vanishes.
        let begins = json.matches("\"ph\": \"B\"").count();
        let ends = json.matches("\"ph\": \"E\"").count();
        assert_eq!((begins, ends), (1, 1));
        assert!(json.contains("\"dropped\": 1"));
    }

    #[cfg(feature = "enabled")]
    mod live {
        use super::super::*;

        // One test drives the whole live recorder: recording is a
        // process-global latch, so splitting this across parallel test
        // threads would interleave enable/disable windows.
        #[test]
        fn record_drain_export_roundtrip() {
            enable(DEFAULT_CAPACITY);
            assert!(is_recording());
            set_thread_track("test", 7);
            {
                let _outer = crate::span("test.trace.outer");
                let _inner = crate::span("test.trace.inner");
                instant("test.trace.mark");
            }
            let handle = std::thread::spawn(|| {
                set_thread_track("test-worker", 0);
                let _w = crate::span("test.trace.worker");
            });
            let _ = handle.join();
            disable();
            assert!(!is_recording());

            let trace = drain();
            assert!(trace.tracks.len() >= 2, "tracks: {:?}", trace.tracks);
            let labels: Vec<&str> = trace.tracks.iter().map(|t| t.label.as_str()).collect();
            assert!(labels.contains(&"test-7"), "labels: {labels:?}");
            assert!(labels.contains(&"test-worker-0"), "labels: {labels:?}");

            let outer = trace.span_intervals("test.trace.outer");
            let inner = trace.span_intervals("test.trace.inner");
            assert_eq!(outer.len(), 1);
            assert_eq!(inner.len(), 1);
            // Guard drop order closes inner before outer.
            assert!(outer[0].0 <= inner[0].0 && inner[0].1 <= outer[0].1);
            assert!(trace.span_window("test.trace.worker").is_some());

            // Timestamps are monotone per track, by single-writer design.
            for info in &trace.tracks {
                let ts: Vec<u64> = trace
                    .events
                    .iter()
                    .filter(|e| e.track == info.track)
                    .map(|e| e.t_ns)
                    .collect();
                assert!(ts.windows(2).all(|w| w[0] <= w[1]), "track {}", info.track);
            }

            let json = trace.to_chrome_json();
            assert!(crate::json::well_formed(&json));
            assert!(json.contains("test.trace.mark"));

            // Events recorded while disabled are not retained.
            let before = drain().events.len();
            let _ghost = crate::span("test.trace.ghost");
            drop(_ghost);
            assert_eq!(drain().events.len(), before);

            // clear() rewinds but keeps tracks claimable.
            clear();
            assert!(drain().events.is_empty());
        }
    }
}
