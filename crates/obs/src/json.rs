//! A hand-rolled deterministic JSON writer.
//!
//! The workspace's BENCH emitters all write JSON by hand so the committed
//! artifacts are byte-stable across runs and toolchains; this module is
//! that discipline packaged once. [`JsonWriter`] tracks nesting and comma
//! placement, escapes strings, and formats floats with a fixed number of
//! decimals, so both the obs [`Snapshot`](crate::Snapshot) writer and
//! external row emitters (e.g. `MessageReport::to_json_row` in
//! `grouprekey`) produce identical text for identical data.

/// Incremental JSON writer with automatic comma placement.
///
/// Call [`begin_object`](JsonWriter::begin_object) /
/// [`begin_array`](JsonWriter::begin_array) to open containers,
/// `field_*` helpers inside objects, `value_*` helpers inside arrays, and
/// [`finish`](JsonWriter::finish) to take the accumulated text. The
/// writer does not validate grammar beyond comma placement — callers
/// pair their begins and ends.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: whether a comma is due before the
    /// next element.
    comma_due: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Writes the separator a new element needs in the current container.
    fn separate(&mut self) {
        if let Some(due) = self.comma_due.last_mut() {
            if *due {
                self.buf.push(',');
                self.buf.push(' ');
            }
            *due = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.separate();
        self.buf.push('{');
        self.comma_due.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.comma_due.pop();
        self.buf.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.separate();
        self.buf.push('[');
        self.comma_due.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.comma_due.pop();
        self.buf.push(']');
    }

    /// Writes an object key; the next `begin_*` or `value_*` call becomes
    /// its value.
    pub fn key(&mut self, key: &str) {
        self.separate();
        self.push_escaped(key);
        self.buf.push(':');
        self.buf.push(' ');
        // The value that follows must not add its own comma.
        if let Some(due) = self.comma_due.last_mut() {
            *due = false;
        }
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, value: u64) {
        self.separate();
        self.buf.push_str(&value.to_string());
    }

    /// Writes a float with exactly `decimals` fractional digits (the
    /// fixed-width form every BENCH artifact uses). Non-finite values are
    /// written as `0.0`, matching the bench emitters.
    pub fn value_f64(&mut self, value: f64, decimals: usize) {
        self.separate();
        if value.is_finite() {
            self.buf.push_str(&format!("{value:.decimals$}"));
        } else {
            self.buf.push_str("0.0");
        }
    }

    /// Writes a string value, escaped.
    pub fn value_str(&mut self, value: &str) {
        self.separate();
        self.push_escaped(value);
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, value: bool) {
        self.separate();
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Writes a `null` value.
    pub fn value_null(&mut self) {
        self.separate();
        self.buf.push_str("null");
    }

    /// `key` + [`value_u64`](JsonWriter::value_u64) in one call.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.value_u64(value);
    }

    /// `key` + [`value_f64`](JsonWriter::value_f64) in one call.
    pub fn field_f64(&mut self, key: &str, value: f64, decimals: usize) {
        self.key(key);
        self.value_f64(value, decimals);
    }

    /// `key` + [`value_str`](JsonWriter::value_str) in one call.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.value_str(value);
    }

    /// `key` + [`value_bool`](JsonWriter::value_bool) in one call.
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.value_bool(value);
    }

    /// Takes the accumulated JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        self.buf
    }

    fn push_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }
}

/// Structural well-formedness check: balanced braces/brackets outside
/// strings, object at the top level. The same validation the BENCH
/// `--check` paths use, shared here so every obs consumer validates
/// snapshots identically.
#[must_use]
pub fn well_formed(text: &str) -> bool {
    let trimmed = text.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return false;
    }
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in trimmed.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_containers_and_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "obs/v1");
        w.key("rows");
        w.begin_array();
        for i in 0..2u64 {
            w.begin_object();
            w.field_u64("i", i);
            w.field_f64("half", i as f64 / 2.0, 3);
            w.end_object();
        }
        w.end_array();
        w.field_bool("ok", true);
        w.end_object();
        let text = w.finish();
        assert_eq!(
            text,
            "{\"schema\": \"obs/v1\", \"rows\": [{\"i\": 0, \"half\": 0.000}, \
             {\"i\": 1, \"half\": 0.500}], \"ok\": true}"
        );
        assert!(well_formed(&text));
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("k", "a\"b\\c\nd\te\u{1}");
        w.end_object();
        let text = w.finish();
        assert_eq!(text, "{\"k\": \"a\\\"b\\\\c\\nd\\te\\u0001\"}");
        assert!(well_formed(&text));
    }

    #[test]
    fn non_finite_floats_degrade_to_zero() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_f64("inf", f64::INFINITY, 3);
        w.field_f64("nan", f64::NAN, 3);
        w.end_object();
        assert_eq!(w.finish(), "{\"inf\": 0.0, \"nan\": 0.0}");
    }

    #[test]
    fn every_control_char_escapes_to_valid_json() {
        // All of U+0000..U+001F must leave as \uXXXX (or the short forms
        // \n \r \t), never raw — raw control bytes break strict parsers.
        let all_controls: String = (0u32..0x20).filter_map(char::from_u32).collect();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("ctl", &all_controls);
        w.end_object();
        let text = w.finish();
        assert!(well_formed(&text));
        for byte in text.bytes() {
            assert!(byte >= 0x20, "raw control byte {byte:#04x} in {text:?}");
        }
        assert!(text.contains("\\u0000"));
        assert!(text.contains("\\u001f"));
        assert!(text.contains("\\n") && text.contains("\\r") && text.contains("\\t"));
    }

    #[test]
    fn non_ascii_passes_through_as_utf8() {
        // Multi-byte UTF-8 needs no escaping; the writer must not
        // mangle it or miscount string boundaries around it.
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("müsli", "héllo wörld \u{1F511} ключ 密钥");
        w.end_object();
        let text = w.finish();
        assert!(well_formed(&text));
        assert!(text.contains("héllo wörld \u{1F511} ключ 密钥"));
    }

    #[test]
    fn quote_and_backslash_storms_stay_balanced() {
        // Pathological values for a brace-balance checker: every kind of
        // bracket inside strings, trailing backslash runs, escaped quotes.
        for value in [
            "\\",
            "\\\\",
            "\\\"",
            "{",
            "}",
            "[",
            "]",
            "{{[[",
            "\"",
            "\\{",
            "a\\",
            "end with quote\"",
        ] {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.field_str("v", value);
            w.end_object();
            let text = w.finish();
            assert!(well_formed(&text), "value {value:?} broke: {text}");
        }
    }

    #[test]
    fn keys_are_escaped_like_values() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("a\"b\\c\nd", 1);
        w.end_object();
        let text = w.finish();
        assert_eq!(text, "{\"a\\\"b\\\\c\\nd\": 1}");
        assert!(well_formed(&text));
    }

    #[test]
    fn null_and_top_level_checks() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("x");
        w.value_null();
        w.end_object();
        assert_eq!(w.finish(), "{\"x\": null}");

        assert!(well_formed("{}"));
        assert!(well_formed("{\"a\": [1, 2, {\"b\": \"}\"}]}"));
        assert!(!well_formed("[1, 2]"));
        assert!(!well_formed("{\"a\": [}"));
        assert!(!well_formed("{\"a\": \"unterminated}"));
    }
}
