//! Dynamic half of the `// xcheck: no_alloc` contract for the bounded
//! pipeline channel: once a [`taskpool::Chan`] is constructed (its one
//! ring allocation), the steady-state `send`/`recv` hot path must
//! perform zero heap allocations — the ring never grows, items move by
//! value, and the condvar hand-off allocates nothing.

use taskpool::Chan;

#[global_allocator]
static ALLOC: xcheck_rt::CountingAlloc = xcheck_rt::CountingAlloc;

#[test]
fn chan_send_recv_is_allocation_free_in_steady_state() {
    xcheck_rt::assert_counting();

    let chan: Chan<[u64; 8]> = Chan::with_capacity(16);

    // Warm-up: fill and drain the ring once so any lazy runtime state
    // (condvar/mutex internals) reaches steady shape.
    for idx in 0..16usize {
        assert!(chan.send(idx, [idx as u64; 8]).is_ok());
    }
    for _ in 0..16 {
        assert!(chan.recv().is_some());
    }

    // Steady state: a full fill-and-drain cycle must not allocate.
    xcheck_rt::assert_zero_alloc("Chan::send/recv", || {
        for idx in 16..32usize {
            let sent = chan.send(idx, [idx as u64; 8]);
            debug_assert!(sent.is_ok());
        }
        let mut sum = 0u64;
        for _ in 0..16 {
            if let Some((_, item)) = chan.recv() {
                sum += item[0];
            }
        }
        sum
    });

    // The channel really ran: it is empty again and still open.
    assert!(chan.send(32, [0; 8]).is_ok());
    assert_eq!(chan.recv().map(|(idx, _)| idx), Some(32));
}

#[test]
fn chan_send_recv_stays_allocation_free_under_wraparound() {
    xcheck_rt::assert_counting();

    let chan: Chan<u64> = Chan::with_capacity(4);

    // Warm-up: several wrap cycles over the small ring.
    for round in 0..8u64 {
        for lane in 0..4u64 {
            assert!(chan.send((round * 4 + lane) as usize, lane).is_ok());
        }
        for _ in 0..4 {
            assert!(chan.recv().is_some());
        }
    }

    // Steady state: interleaved send/recv that wraps the ring head many
    // times must not allocate.
    xcheck_rt::assert_zero_alloc("Chan::send/recv wraparound", || {
        let mut acc = 0u64;
        for i in 0..64usize {
            let sent = chan.send(i, i as u64);
            debug_assert!(sent.is_ok());
            if let Some((_, v)) = chan.recv() {
                acc += v;
            }
        }
        acc
    });
}
