//! With the metrics layer compiled in, metrics recorded concurrently from
//! pool workers must sum exactly — no lost updates under the relaxed
//! atomics the registry uses. A no-op build has no registry to interrogate,
//! so the test is vacuous there (the zero-allocation test in `obs` covers
//! that side).

#[test]
fn pool_recorded_metrics_sum_exactly() {
    if !obs::enabled() {
        return;
    }
    const ITEMS: u64 = 512;
    let items: Vec<u64> = (0..ITEMS).collect();
    let out = taskpool::with_workers(4, || {
        taskpool::map(&items, |_, &v| {
            let _span = obs::span("test.pool.item");
            obs::counter_add("test.pool.count", 1);
            obs::observe("test.pool.value", v);
            v
        })
    });
    assert_eq!(out, items, "map stays deterministic under instrumentation");

    let snap = obs::snapshot();
    assert_eq!(snap.counter("test.pool.count"), ITEMS);
    let span = snap.span("test.pool.item").expect("span registered");
    assert_eq!(span.count, ITEMS, "every span guard recorded exactly once");
    let value = snap
        .values
        .iter()
        .find(|v| v.name == "test.pool.value")
        .expect("value series registered");
    assert_eq!(value.count, ITEMS);
    assert_eq!(value.total, ITEMS * (ITEMS - 1) / 2, "no lost updates");
    assert_eq!((value.min, value.max), (0, ITEMS - 1));

    // taskpool's own instrumentation saw the same work: every item pulled
    // off the queue is counted exactly once across all workers.
    assert_eq!(snap.counter("taskpool.tasks"), ITEMS);
    let per_worker = snap
        .values
        .iter()
        .find(|v| v.name == "taskpool.tasks_per_worker")
        .expect("taskpool records its worker shares");
    assert_eq!(per_worker.total, ITEMS, "worker shares partition the items");
}
