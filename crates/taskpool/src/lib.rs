//! A zero-dependency scoped thread pool for deterministic data-parallel
//! fan-out.
//!
//! The rekey datapath has several embarrassingly parallel stages —
//! encoding independent FEC blocks, sealing independent key-tree subtree
//! groups, deriving per-member USR packets — and this crate gives them a
//! single minimal primitive: [`map`] / [`map_mut`] over a slice, with
//! results returned **in input order** regardless of worker scheduling.
//! Work distribution is a shared index queue, so an expensive item does
//! not stall the items behind it on one worker.
//!
//! Everything runs on [`std::thread::scope`]: no global pool, no
//! channels, no `unsafe`, no dependencies. Worker count resolves, in
//! priority order, from a [`with_workers`] override (thread-local, used
//! by tests to force a parallel or sequential run deterministically),
//! the `REKEY_THREADS` environment variable, and the machine's available
//! parallelism. With one worker (or one item) the map degenerates to a
//! plain sequential loop on the calling thread — same closure, same
//! order, no threads spawned.
//!
//! # Determinism
//!
//! For a pure closure `f`, `map(items, f)` returns exactly
//! `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` for every
//! worker count: items never migrate between slots, results are slotted
//! by index, and each item is processed exactly once. Parallelism changes
//! wall-clock time only, never output — the property the protocol's
//! "parallel encode is bit-identical to sequential" tests pin down.
//!
//! # Schedule perturbation
//!
//! That guarantee is only worth what the tests that pin it can reach, and
//! the OS scheduler rarely cooperates: on a quiet machine workers claim
//! indices in nearly sorted order every run. [`with_schedule`] (or the
//! `XCHECK_SCHED_SEED` environment variable for ad-hoc runs) installs a
//! seeded adversarial schedule — task pickup runs through a Fisher–Yates
//! permutation of the index space and workers inject `yield_now` points
//! pseudo-randomly — so a bit-identity test can re-run the same workload
//! under many materially different interleavings. Results are still
//! returned in input order; a correct caller cannot tell the difference,
//! which is exactly what the perturbation gates assert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipe;

pub use pipe::{pipeline, Chan, Closed, OrderedRx, Sender};

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker-count override installed by [`with_workers`] on this thread.
    static WORKER_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Schedule-perturbation seed installed by [`with_schedule`].
    static SCHED_OVERRIDE: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Runs `body` with the worker count pinned to `workers` on the current
/// thread, restoring the previous setting afterwards (also on panic).
///
/// `with_workers(1, ..)` forces the sequential path; tests use larger
/// counts to exercise the parallel path even on single-core machines.
/// The override is thread-local, so concurrent tests cannot race on it
/// the way an environment variable would.
pub fn with_workers<R>(workers: usize, body: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(WORKER_OVERRIDE.with(|cell| cell.replace(Some(workers.max(1)))));
    body()
}

/// Runs `body` with schedule perturbation pinned to `seed` on the current
/// thread, restoring the previous setting afterwards (also on panic).
///
/// Every [`map`] / [`map_mut`] under `body` — including maps issued by
/// the workers themselves, which inherit the seed — draws its task-pickup
/// permutation and yield points from `seed`. Distinct seeds produce
/// materially different interleavings; the same seed reproduces one
/// exactly (up to OS preemption). Like [`with_workers`], the override is
/// thread-local so concurrent tests cannot race on it.
pub fn with_schedule<R>(seed: u64, body: impl FnOnce() -> R) -> R {
    with_schedule_opt(Some(seed), body)
}

/// [`with_schedule`] over an optional seed; workers use it to re-install
/// the calling thread's setting (including "none") inside the scope.
fn with_schedule_opt<R>(seed: Option<u64>, body: impl FnOnce() -> R) -> R {
    struct Restore(Option<u64>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCHED_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(SCHED_OVERRIDE.with(|cell| cell.replace(seed)));
    body()
}

/// The active schedule-perturbation seed on this thread: the
/// [`with_schedule`] override if present, else the `XCHECK_SCHED_SEED`
/// environment variable, else `None` (natural scheduling).
pub fn schedule_seed() -> Option<u64> {
    if let Some(seed) = SCHED_OVERRIDE.with(Cell::get) {
        return Some(seed);
    }
    if let Ok(raw) = std::env::var("XCHECK_SCHED_SEED") {
        if let Ok(seed) = raw.trim().parse::<u64>() {
            return Some(seed);
        }
    }
    None
}

/// SplitMix64 finalizer: the crate's only PRNG, strong enough to decouple
/// yield points and shuffles from the seed's bit patterns.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seeded in-place Fisher–Yates shuffle; the same seed always produces
/// the same permutation of a same-length slice, which is what keeps
/// [`map`] and [`map_mut`] pickup orders aligned for one seed.
fn shuffle_in_place<T>(v: &mut [T], seed: u64) {
    let mut state = seed;
    for i in (1..v.len()).rev() {
        state = splitmix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

/// Seeded Fisher–Yates permutation of `0..n`: the adversarial task-pickup
/// order for one perturbed map.
fn shuffled_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    shuffle_in_place(&mut order, seed);
    order
}

/// Pseudo-randomly (by `seed` and item index) hands the OS a preemption
/// point, so perturbed runs explore interleavings a quiet machine never
/// produces naturally. Roughly one item in four yields.
fn maybe_yield(seed: u64, idx: usize) {
    if splitmix64(seed ^ ((idx as u64) << 1 | 1)) & 3 == 0 {
        std::thread::yield_now();
    }
}

/// The worker count maps on this thread will use: the [`with_workers`]
/// override if present, else the `REKEY_THREADS` environment variable,
/// else [`std::thread::available_parallelism`]. Always at least 1.
pub fn max_workers() -> usize {
    if let Some(n) = WORKER_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var("REKEY_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Applies `f` to every element, in parallel, returning results in input
/// order.
///
/// `f` receives the element index and a shared reference. See the crate
/// docs for the determinism guarantee.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope joins its workers.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let sched = schedule_seed();
    let workers = max_workers().min(items.len());
    if workers <= 1 {
        let _busy = obs::span("taskpool.worker_busy");
        record_worker_share(items.len());
        let Some(seed) = sched else {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        };
        // Perturbed sequential run: process in the shuffled order (this
        // is where single-core machines get their interleaving coverage),
        // then slot results back.
        let mut pairs: Vec<(usize, R)> = shuffled_order(items.len(), seed)
            .into_iter()
            .map(|idx| (idx, f(idx, &items[idx])))
            .collect();
        pairs.sort_unstable_by_key(|(idx, _)| *idx);
        return pairs.into_iter().map(|(_, r)| r).collect();
    }
    obs::gauge_set("taskpool.workers", workers as u64);
    let order = sched.map(|seed| shuffled_order(items.len(), seed));
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (next, order, f, collected) = (&next, &order, &f, &collected);
            scope.spawn(move || {
                // Label this worker's flight-recorder track (no-op unless
                // trace recording is on).
                obs::trace::set_thread_track("map", w as u32);
                // Workers inherit the caller's perturbation seed so maps
                // nested inside `f` are perturbed too.
                with_schedule_opt(sched, || {
                    let _busy = obs::span("taskpool.worker_busy");
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        // xcheck-ordering: work-stealing ticket counter; results are slotted by index, so claim order is irrelevant
                        let ticket = next.fetch_add(1, Ordering::Relaxed);
                        if ticket >= items.len() {
                            break;
                        }
                        let idx = order.as_ref().map_or(ticket, |o| o[ticket]);
                        if let Some(seed) = sched {
                            maybe_yield(seed, idx);
                        }
                        local.push((idx, f(idx, &items[idx])));
                    }
                    record_worker_share(local.len());
                    lock_ignoring_poison(collected).append(&mut local);
                });
            });
        }
    });
    into_input_order(collected, items.len())
}

/// Applies `f` to every element through a mutable reference, in parallel,
/// returning results in input order.
///
/// Each element is handed to exactly one worker, so the mutable borrows
/// never alias. This is the shape block encoding wants: the closure
/// mutates per-block state (row caches, parity cursors) and returns the
/// minted packets.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope joins its workers.
pub fn map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let sched = schedule_seed();
    let workers = max_workers().min(items.len());
    if workers <= 1 {
        let _busy = obs::span("taskpool.worker_busy");
        record_worker_share(items.len());
        let Some(seed) = sched else {
            return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        };
        // Perturbed sequential run: visit items in the shuffled order,
        // then slot results back into input order.
        let mut shuffled: Vec<(usize, &mut T)> = items.iter_mut().enumerate().collect();
        shuffle_in_place(&mut shuffled, seed);
        let mut pairs: Vec<(usize, R)> = shuffled
            .into_iter()
            .map(|(idx, item)| (idx, f(idx, item)))
            .collect();
        pairs.sort_unstable_by_key(|(idx, _)| *idx);
        return pairs.into_iter().map(|(_, r)| r).collect();
    }
    obs::gauge_set("taskpool.workers", workers as u64);
    let total = items.len();
    // Exclusive hand-off queue: each worker claims `(index, &mut item)`
    // pairs, in input order naturally or in the seeded shuffle when
    // perturbation is on.
    let queue: Mutex<Box<dyn Iterator<Item = (usize, &mut T)> + Send>> = match sched {
        None => Mutex::new(Box::new(items.iter_mut().enumerate())),
        Some(seed) => {
            let mut shuffled: Vec<(usize, &mut T)> = items.iter_mut().enumerate().collect();
            shuffle_in_place(&mut shuffled, seed);
            Mutex::new(Box::new(shuffled.into_iter()))
        }
    };
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (queue, f, collected) = (&queue, &f, &collected);
            scope.spawn(move || {
                // Label this worker's flight-recorder track (no-op unless
                // trace recording is on).
                obs::trace::set_thread_track("map", w as u32);
                // Workers inherit the caller's perturbation seed so maps
                // nested inside `f` are perturbed too.
                with_schedule_opt(sched, || {
                    let _busy = obs::span("taskpool.worker_busy");
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let next = lock_ignoring_poison(queue).next();
                        let Some((idx, item)) = next else { break };
                        if let Some(seed) = sched {
                            maybe_yield(seed, idx);
                        }
                        local.push((idx, f(idx, item)));
                    }
                    record_worker_share(local.len());
                    lock_ignoring_poison(collected).append(&mut local);
                });
            });
        }
    });
    into_input_order(collected, total)
}

/// Records one worker's slice of a map: how many tasks it pulled off the
/// shared queue, both as a per-worker distribution and as a running
/// total. No-ops (like every `obs` call) unless the `obs` feature is on.
fn record_worker_share(tasks: usize) {
    obs::counter_add("taskpool.tasks", tasks as u64);
    obs::observe("taskpool.tasks_per_worker", tasks as u64);
}

/// Locks a mutex, proceeding through poisoning: a poisoned lock here only
/// means another worker panicked, and that panic is already propagating
/// via the scope join.
fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Sorts collected `(index, result)` pairs back into input order.
fn into_input_order<R>(collected: Mutex<Vec<(usize, R)>>, expected: usize) -> Vec<R> {
    let mut pairs = collected.into_inner().unwrap_or_else(|p| p.into_inner());
    debug_assert_eq!(
        pairs.len(),
        expected,
        "every item yields exactly one result"
    );
    pairs.sort_unstable_by_key(|(idx, _)| *idx);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for workers in [1, 2, 3, 8] {
            let out = with_workers(workers, || map(&items, |i, &v| v * 2 + i as u64));
            let expect: Vec<u64> = items
                .iter()
                .enumerate()
                .map(|(i, &v)| v * 2 + i as u64)
                .collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    fn map_mut_mutates_each_item_exactly_once() {
        for workers in [1, 2, 5] {
            let mut items: Vec<u32> = vec![0; 64];
            let indices = with_workers(workers, || {
                map_mut(&mut items, |i, slot| {
                    *slot += 1;
                    i
                })
            });
            assert!(items.iter().all(|&v| v == 1), "workers = {workers}");
            assert_eq!(indices, (0..64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map(&empty, |_, &v| v).is_empty());
        let mut one = vec![41u8];
        assert_eq!(
            with_workers(4, || map_mut(&mut one, |_, v| {
                *v += 1;
                *v
            })),
            vec![42]
        );
    }

    #[test]
    fn with_workers_restores_previous_setting() {
        let outer = with_workers(3, || {
            let inner = with_workers(7, max_workers);
            assert_eq!(inner, 7);
            max_workers()
        });
        assert_eq!(outer, 3);
    }

    #[test]
    fn zero_override_clamps_to_one() {
        assert_eq!(with_workers(0, max_workers), 1);
    }

    #[test]
    fn with_schedule_restores_previous_setting() {
        assert_eq!(SCHED_OVERRIDE.with(Cell::get), None);
        let outer = with_schedule(3, || {
            let inner = with_schedule(7, schedule_seed);
            assert_eq!(inner, Some(7));
            schedule_seed()
        });
        assert_eq!(outer, Some(3));
        assert_eq!(SCHED_OVERRIDE.with(Cell::get), None);
    }

    #[test]
    fn shuffled_order_is_a_permutation_and_seed_sensitive() {
        let a = shuffled_order(64, 1);
        let b = shuffled_order(64, 2);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(a, (0..64).collect::<Vec<_>>(), "seeded order must differ");
        assert_ne!(a, b, "different seeds give different orders");
        assert_eq!(a, shuffled_order(64, 1), "same seed reproduces");
    }

    #[test]
    fn perturbed_map_is_bit_identical_to_natural_map() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &v)| v * 2 + i as u64)
            .collect();
        for workers in [1, 4] {
            for seed in 0..8u64 {
                let out = with_workers(workers, || {
                    with_schedule(seed, || map(&items, |i, &v| v * 2 + i as u64))
                });
                assert_eq!(out, expect, "workers = {workers}, seed = {seed}");
            }
        }
    }

    #[test]
    fn perturbed_map_mut_mutates_each_item_exactly_once() {
        for workers in [1, 3] {
            for seed in 0..8u64 {
                let mut items: Vec<u32> = vec![0; 64];
                let indices = with_workers(workers, || {
                    with_schedule(seed, || {
                        map_mut(&mut items, |i, slot| {
                            *slot += 1;
                            i
                        })
                    })
                });
                assert!(items.iter().all(|&v| v == 1), "seed = {seed}");
                assert_eq!(indices, (0..64).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn perturbed_sequential_run_really_visits_items_shuffled() {
        use std::sync::Mutex;
        let items: Vec<u8> = vec![0; 32];
        let visited = Mutex::new(Vec::new());
        with_workers(1, || {
            with_schedule(11, || map(&items, |i, _| visited.lock().unwrap().push(i)))
        });
        let visited = visited.into_inner().unwrap();
        let mut sorted = visited.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "every item visited");
        assert_ne!(
            visited, sorted,
            "perturbed pickup must not be in input order"
        );
    }

    #[test]
    fn workers_inherit_the_perturbation_seed() {
        let items: Vec<u8> = vec![0; 4];
        let seeds = with_workers(2, || {
            with_schedule(5, || map(&items, |_, _| schedule_seed()))
        });
        assert_eq!(seeds, vec![Some(5); 4], "nested maps see the seed");
    }

    #[test]
    fn parallel_matches_sequential_for_pure_closures() {
        let items: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 100]).collect();
        let hash = |_, v: &Vec<u8>| -> u64 {
            v.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
            })
        };
        let sequential = with_workers(1, || map(&items, hash));
        let parallel = with_workers(6, || map(&items, hash));
        assert_eq!(sequential, parallel);
    }
}
