//! A zero-dependency scoped thread pool for deterministic data-parallel
//! fan-out.
//!
//! The rekey datapath has several embarrassingly parallel stages —
//! encoding independent FEC blocks, sealing independent key-tree subtree
//! groups, deriving per-member USR packets — and this crate gives them a
//! single minimal primitive: [`map`] / [`map_mut`] over a slice, with
//! results returned **in input order** regardless of worker scheduling.
//! Work distribution is a shared index queue, so an expensive item does
//! not stall the items behind it on one worker.
//!
//! Everything runs on [`std::thread::scope`]: no global pool, no
//! channels, no `unsafe`, no dependencies. Worker count resolves, in
//! priority order, from a [`with_workers`] override (thread-local, used
//! by tests to force a parallel or sequential run deterministically),
//! the `REKEY_THREADS` environment variable, and the machine's available
//! parallelism. With one worker (or one item) the map degenerates to a
//! plain sequential loop on the calling thread — same closure, same
//! order, no threads spawned.
//!
//! # Determinism
//!
//! For a pure closure `f`, `map(items, f)` returns exactly
//! `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` for every
//! worker count: items never migrate between slots, results are slotted
//! by index, and each item is processed exactly once. Parallelism changes
//! wall-clock time only, never output — the property the protocol's
//! "parallel encode is bit-identical to sequential" tests pin down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker-count override installed by [`with_workers`] on this thread.
    static WORKER_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `body` with the worker count pinned to `workers` on the current
/// thread, restoring the previous setting afterwards (also on panic).
///
/// `with_workers(1, ..)` forces the sequential path; tests use larger
/// counts to exercise the parallel path even on single-core machines.
/// The override is thread-local, so concurrent tests cannot race on it
/// the way an environment variable would.
pub fn with_workers<R>(workers: usize, body: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(WORKER_OVERRIDE.with(|cell| cell.replace(Some(workers.max(1)))));
    body()
}

/// The worker count maps on this thread will use: the [`with_workers`]
/// override if present, else the `REKEY_THREADS` environment variable,
/// else [`std::thread::available_parallelism`]. Always at least 1.
pub fn max_workers() -> usize {
    if let Some(n) = WORKER_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var("REKEY_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Applies `f` to every element, in parallel, returning results in input
/// order.
///
/// `f` receives the element index and a shared reference. See the crate
/// docs for the determinism guarantee.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope joins its workers.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = max_workers().min(items.len());
    if workers <= 1 {
        let _busy = obs::span("taskpool.worker_busy");
        record_worker_share(items.len());
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    obs::gauge_set("taskpool.workers", workers as u64);
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _busy = obs::span("taskpool.worker_busy");
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(idx) else { break };
                    local.push((idx, f(idx, item)));
                }
                record_worker_share(local.len());
                lock_ignoring_poison(&collected).append(&mut local);
            });
        }
    });
    into_input_order(collected, items.len())
}

/// Applies `f` to every element through a mutable reference, in parallel,
/// returning results in input order.
///
/// Each element is handed to exactly one worker, so the mutable borrows
/// never alias. This is the shape block encoding wants: the closure
/// mutates per-block state (row caches, parity cursors) and returns the
/// minted packets.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope joins its workers.
pub fn map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let workers = max_workers().min(items.len());
    if workers <= 1 {
        let _busy = obs::span("taskpool.worker_busy");
        record_worker_share(items.len());
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    obs::gauge_set("taskpool.workers", workers as u64);
    let total = items.len();
    let queue: Mutex<std::iter::Enumerate<std::slice::IterMut<'_, T>>> =
        Mutex::new(items.iter_mut().enumerate());
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _busy = obs::span("taskpool.worker_busy");
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let next = lock_ignoring_poison(&queue).next();
                    let Some((idx, item)) = next else { break };
                    local.push((idx, f(idx, item)));
                }
                record_worker_share(local.len());
                lock_ignoring_poison(&collected).append(&mut local);
            });
        }
    });
    into_input_order(collected, total)
}

/// Records one worker's slice of a map: how many tasks it pulled off the
/// shared queue, both as a per-worker distribution and as a running
/// total. No-ops (like every `obs` call) unless the `obs` feature is on.
fn record_worker_share(tasks: usize) {
    obs::counter_add("taskpool.tasks", tasks as u64);
    obs::observe("taskpool.tasks_per_worker", tasks as u64);
}

/// Locks a mutex, proceeding through poisoning: a poisoned lock here only
/// means another worker panicked, and that panic is already propagating
/// via the scope join.
fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Sorts collected `(index, result)` pairs back into input order.
fn into_input_order<R>(collected: Mutex<Vec<(usize, R)>>, expected: usize) -> Vec<R> {
    let mut pairs = collected.into_inner().unwrap_or_else(|p| p.into_inner());
    debug_assert_eq!(
        pairs.len(),
        expected,
        "every item yields exactly one result"
    );
    pairs.sort_unstable_by_key(|(idx, _)| *idx);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for workers in [1, 2, 3, 8] {
            let out = with_workers(workers, || map(&items, |i, &v| v * 2 + i as u64));
            let expect: Vec<u64> = items
                .iter()
                .enumerate()
                .map(|(i, &v)| v * 2 + i as u64)
                .collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    fn map_mut_mutates_each_item_exactly_once() {
        for workers in [1, 2, 5] {
            let mut items: Vec<u32> = vec![0; 64];
            let indices = with_workers(workers, || {
                map_mut(&mut items, |i, slot| {
                    *slot += 1;
                    i
                })
            });
            assert!(items.iter().all(|&v| v == 1), "workers = {workers}");
            assert_eq!(indices, (0..64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map(&empty, |_, &v| v).is_empty());
        let mut one = vec![41u8];
        assert_eq!(
            with_workers(4, || map_mut(&mut one, |_, v| {
                *v += 1;
                *v
            })),
            vec![42]
        );
    }

    #[test]
    fn with_workers_restores_previous_setting() {
        let outer = with_workers(3, || {
            let inner = with_workers(7, max_workers);
            assert_eq!(inner, 7);
            max_workers()
        });
        assert_eq!(outer, 3);
    }

    #[test]
    fn zero_override_clamps_to_one() {
        assert_eq!(with_workers(0, max_workers), 1);
    }

    #[test]
    fn parallel_matches_sequential_for_pure_closures() {
        let items: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 100]).collect();
        let hash = |_, v: &Vec<u8>| -> u64 {
            v.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
            })
        };
        let sequential = with_workers(1, || map(&items, hash));
        let parallel = with_workers(6, || map(&items, hash));
        assert_eq!(sequential, parallel);
    }
}
