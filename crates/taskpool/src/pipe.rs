//! A bounded index-stamped channel and a streaming stage pipeline.
//!
//! [`map`](crate::map) covers the batch-barrier shape: every input exists
//! up front, workers fan out, the caller blocks until the whole output
//! vector is ready. The rekey datapath also has a *streaming* shape —
//! key-mint chunks become sealable edge chunks become encodable packet
//! blocks — where downstream stages can start the moment the first chunk
//! exists. [`pipeline`] gives that shape the same determinism contract as
//! the maps: items are stamped with their production index, flow through
//! a fixed-capacity channel in any order the scheduler likes, and are
//! reassembled strictly in input order before the consumer sees them, so
//! the observable output is bit-identical at every worker count and under
//! every [`with_schedule`](crate::with_schedule) perturbation seed.
//!
//! The channel is a preallocated ring (a `VecDeque` sized once at
//! construction, never grown), so the steady-state send/recv hot path
//! performs zero allocations — pinned by the `// xcheck: no_alloc` marks
//! and the counting-allocator tests in `tests/no_alloc_marks.rs`. All
//! cross-thread hand-off is mutex-and-condvar; the only atomics are
//! advisory (a depth gauge and the live-worker countdown), each with its
//! ordering justified in place.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::{lock_ignoring_poison, max_workers, maybe_yield, schedule_seed, with_schedule_opt};

/// The error returned by [`Sender::send`] once the channel has been
/// closed: the item could not be enqueued and is handed back to the
/// caller. In a [`pipeline`] this only happens while a stage panic is
/// already propagating, so producers treat it as "stop feeding".
#[derive(Debug, PartialEq, Eq)]
pub struct Closed<T>(pub T);

/// Interior state of a [`Chan`]: the preallocated ring plus the closed
/// flag, both guarded by one mutex so "is there room / is there data /
/// are we done" is always a consistent view.
struct ChanState<T> {
    /// Index-stamped items in arrival order. Allocated once to `capacity`
    /// and never grown: `send` blocks instead of reallocating.
    ring: VecDeque<(usize, T)>,
    /// Once set, sends fail and receives drain the remaining items.
    closed: bool,
}

/// A bounded multi-producer multi-consumer channel of index-stamped
/// items.
///
/// Capacity is fixed at construction; senders block while the ring is
/// full, receivers block while it is empty, and [`Chan::close`] wakes
/// everyone. The steady-state send/recv path never allocates.
pub struct Chan<T> {
    state: Mutex<ChanState<T>>,
    /// Signalled when an item is taken or the channel closes.
    not_full: Condvar,
    /// Signalled when an item arrives or the channel closes.
    not_empty: Condvar,
    /// Advisory occupancy mirror for the `pipeline.queue_depth`
    /// histogram; the authoritative depth is `ring.len()` under the lock.
    depth: AtomicUsize,
    capacity: usize,
}

impl<T> Chan<T> {
    /// Creates a channel whose ring holds `capacity` items (at least 1).
    ///
    /// This is the only allocation the channel ever performs.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Chan {
            state: Mutex::new(ChanState {
                ring: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            depth: AtomicUsize::new(0),
            capacity,
        }
    }

    /// The fixed ring capacity this channel was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks until there is room, then enqueues `(idx, item)`.
    ///
    /// Returns the item back inside [`Closed`] if the channel was closed
    /// before room appeared. Steady state allocates nothing: the ring was
    /// sized at construction and `push_back` below never grows it.
    // xcheck: no_alloc
    pub fn send(&self, idx: usize, item: T) -> Result<(), Closed<T>> {
        let mut state = lock_ignoring_poison(&self.state);
        while state.ring.len() >= self.capacity && !state.closed {
            state = wait_ignoring_poison(&self.not_full, state);
        }
        if state.closed {
            return Err(Closed(item));
        }
        state.ring.push_back((idx, item));
        // xcheck-ordering: advisory occupancy mirror for the obs histogram; the true depth is ring.len() under the mutex
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        obs::observe("pipeline.queue_depth", depth as u64);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available, returning it with its stamp;
    /// `None` once the channel is closed and drained.
    // xcheck: no_alloc
    pub fn recv(&self) -> Option<(usize, T)> {
        let mut state = lock_ignoring_poison(&self.state);
        loop {
            if let Some(pair) = state.ring.pop_front() {
                // xcheck-ordering: advisory occupancy mirror for the obs histogram; the true depth is ring.len() under the mutex
                self.depth.fetch_sub(1, Ordering::Relaxed);
                drop(state);
                self.not_full.notify_one();
                return Some(pair);
            }
            if state.closed {
                return None;
            }
            state = wait_ignoring_poison(&self.not_empty, state);
        }
    }

    /// Closes the channel: senders start failing, receivers drain what
    /// remains and then see `None`. Idempotent.
    pub fn close(&self) {
        let mut state = lock_ignoring_poison(&self.state);
        state.closed = true;
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// Waits on a condvar, proceeding through poisoning for the same reason
/// as [`lock_ignoring_poison`]: a poisoned lock means a sibling worker
/// panicked, and that panic is already propagating through the scope
/// join.
fn wait_ignoring_poison<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match condvar.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The producer's handle onto a [`pipeline`]'s input channel: stamps each
/// item with a monotonically increasing production index, which is the
/// order the consumer will observe regardless of scheduling.
pub struct Sender<'a, T> {
    sink: SenderSink<'a, T>,
    next_idx: usize,
}

/// Where a [`Sender`] puts items: the live channel in the threaded
/// pipeline, or a plain vector in the sequential degenerate case (where
/// capacity back-pressure would deadlock with no consumer running yet).
enum SenderSink<'a, T> {
    Chan(&'a Chan<T>),
    Buffer(&'a mut Vec<(usize, T)>),
}

impl<T> Sender<'_, T> {
    /// Enqueues `item` under the next production index.
    ///
    /// `Err` means the pipeline is shutting down because a downstream
    /// stage panicked; the producer should stop feeding and return — the
    /// original panic resurfaces when the pipeline scope joins.
    pub fn send(&mut self, item: T) -> Result<(), Closed<T>> {
        let idx = self.next_idx;
        match &mut self.sink {
            SenderSink::Chan(chan) => chan.send(idx, item)?,
            SenderSink::Buffer(buf) => buf.push((idx, item)),
        }
        self.next_idx += 1;
        obs::counter_add("pipeline.chunks", 1);
        Ok(())
    }

    /// How many items have been successfully sent so far.
    pub fn sent(&self) -> usize {
        self.next_idx
    }
}

/// The consumer's handle onto a [`pipeline`]'s output: delivers
/// transformed items strictly in production-index order, holding
/// out-of-order arrivals in a reorder buffer until their turn.
pub struct OrderedRx<'a, T> {
    source: RxSource<'a, T>,
    /// Arrived-early items keyed by production index.
    pending: BTreeMap<usize, T>,
    /// The next production index to release.
    next_idx: usize,
}

/// Where an [`OrderedRx`] pulls from: the live channel, or the pre-filled
/// buffer of the sequential degenerate case.
enum RxSource<'a, T> {
    Chan(&'a Chan<T>),
    Buffer(std::vec::IntoIter<(usize, T)>),
}

impl<T> OrderedRx<'_, T> {
    /// Blocks until the next item *in production order* is available.
    ///
    /// Returns `None` once every producer-side item has been delivered
    /// and the channel is closed. (If a stage panicked, `None` may arrive
    /// early with a gap outstanding; the panic resurfaces at scope join,
    /// so the consumer's partial output is never observed.)
    pub fn recv(&mut self) -> Option<T> {
        loop {
            if let Some(item) = self.pending.remove(&self.next_idx) {
                self.next_idx += 1;
                return Some(item);
            }
            let (idx, item) = match &mut self.source {
                RxSource::Chan(chan) => chan.recv()?,
                RxSource::Buffer(iter) => iter.next()?,
            };
            if idx == self.next_idx {
                self.next_idx += 1;
                return Some(item);
            }
            self.pending.insert(idx, item);
        }
    }

    /// How many items have been released in order so far.
    pub fn delivered(&self) -> usize {
        self.next_idx
    }
}

/// Closes both pipeline channels when dropped. Transform workers hold one
/// so that a panicking stage unblocks the producer (whose `send` starts
/// failing) and the consumer (whose `recv` drains and ends) instead of
/// deadlocking the scope; the panic itself propagates through the scope
/// join.
struct PanicCloser<'a, I, M> {
    input: &'a Chan<I>,
    output: &'a Chan<M>,
    /// Disarmed on orderly exit, where the worker-countdown protocol
    /// closes the output instead.
    armed: bool,
}

impl<I, M> Drop for PanicCloser<'_, I, M> {
    fn drop(&mut self) {
        if self.armed {
            self.input.close();
            self.output.close();
        }
    }
}

/// Runs a three-stage streaming pipeline: `produce` on the calling
/// thread, `transform` on a pool of workers, `consume` on its own thread,
/// all connected by bounded index-stamped channels of `capacity` items.
///
/// The producer stamps items `0, 1, 2, …` in the order it sends them;
/// the consumer's [`OrderedRx`] releases transformed items in exactly
/// that order. For a pure `transform`, the consumer therefore observes
/// `transform(0, i0), transform(1, i1), …` — the same sequence a
/// sequential loop would produce — at every worker count and under every
/// [`with_schedule`](crate::with_schedule) seed, which is the pipeline's
/// determinism contract.
///
/// Worker-count resolution matches [`map`](crate::map): the
/// [`with_workers`](crate::with_workers) override, then `REKEY_THREADS`,
/// then available parallelism. With one worker the pipeline degenerates
/// to a strictly sequential produce-then-transform-then-consume loop on
/// the calling thread — no threads, no channel, byte-identical output.
///
/// Returns the producer's and consumer's results.
///
/// # Panics
///
/// Propagates a panic from any stage after the scope joins its threads.
pub fn pipeline<I, M, RP, RC>(
    capacity: usize,
    produce: impl FnOnce(&mut Sender<'_, I>) -> RP,
    transform: impl Fn(usize, I) -> M + Sync,
    consume: impl FnOnce(&mut OrderedRx<'_, M>) -> RC + Send,
) -> (RP, RC)
where
    I: Send,
    M: Send,
    RC: Send,
{
    let sched = schedule_seed();
    let workers = max_workers();
    if workers <= 1 {
        // Sequential degenerate case: run the stages as the classic
        // barrier loop. Into a buffer (no consumer is running, so channel
        // back-pressure would deadlock), transform in production order,
        // then let the consumer drain the pre-filled OrderedRx.
        let mut buffer: Vec<(usize, I)> = Vec::new();
        let rp = produce(&mut Sender {
            sink: SenderSink::Buffer(&mut buffer),
            next_idx: 0,
        });
        let transformed: Vec<(usize, M)> = buffer
            .into_iter()
            .map(|(idx, item)| {
                if let Some(seed) = sched {
                    maybe_yield(seed, idx);
                }
                (idx, transform(idx, item))
            })
            .collect();
        let mut rx = OrderedRx {
            source: RxSource::Buffer(transformed.into_iter()),
            pending: BTreeMap::new(),
            next_idx: 0,
        };
        let rc = consume(&mut rx);
        return (rp, rc);
    }

    obs::gauge_set("pipeline.workers", workers as u64);
    let input: Chan<I> = Chan::with_capacity(capacity);
    let output: Chan<M> = Chan::with_capacity(capacity);
    let live = AtomicUsize::new(workers);
    std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            // Label the consumer's flight-recorder track (no-op unless
            // trace recording is on).
            obs::trace::set_thread_track("pipe-consume", 0);
            with_schedule_opt(sched, || {
                let mut rx = OrderedRx {
                    source: RxSource::Chan(&output),
                    pending: BTreeMap::new(),
                    next_idx: 0,
                };
                consume(&mut rx)
            })
        });
        for w in 0..workers {
            let (input, output, live, transform) = (&input, &output, &live, &transform);
            scope.spawn(move || {
                // Label this worker's flight-recorder track (no-op unless
                // trace recording is on).
                obs::trace::set_thread_track("pipe", w as u32);
                // Workers inherit the caller's perturbation seed so maps
                // nested inside `transform` are perturbed too.
                with_schedule_opt(sched, || {
                    let mut closer = PanicCloser {
                        input,
                        output,
                        armed: true,
                    };
                    while let Some((idx, item)) = input.recv() {
                        if let Some(seed) = sched {
                            maybe_yield(seed, idx);
                        }
                        if output.send(idx, transform(idx, item)).is_err() {
                            break;
                        }
                    }
                    closer.armed = false;
                    // xcheck-ordering: AcqRel so the last worker's close() observes every sibling's final send before releasing the consumer
                    if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        output.close();
                    }
                });
            });
        }
        let rp = produce(&mut Sender {
            sink: SenderSink::Chan(&input),
            next_idx: 0,
        });
        input.close();
        let rc = match consumer.join() {
            Ok(rc) => rc,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (rp, rc)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{with_schedule, with_workers};

    #[test]
    fn pipeline_output_matches_sequential_loop() {
        let expect: Vec<u64> = (0..257u64).map(|v| v * 3 + 1).collect();
        for workers in [1, 2, 4] {
            let (sent, got) = with_workers(workers, || {
                pipeline(
                    4,
                    |tx| {
                        for v in 0..257u64 {
                            if tx.send(v).is_err() {
                                break;
                            }
                        }
                        tx.sent()
                    },
                    |_, v| v * 3 + 1,
                    |rx| {
                        let mut out = Vec::new();
                        while let Some(v) = rx.recv() {
                            out.push(v);
                        }
                        out
                    },
                )
            });
            assert_eq!(sent, 257, "workers = {workers}");
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn pipeline_is_bit_identical_under_schedule_perturbation() {
        let expect: Vec<u64> = (0..97u64).map(|v| v ^ 0xabcd).collect();
        for workers in [1, 2, 4] {
            for seed in 0..8u64 {
                let (_, got) = with_workers(workers, || {
                    with_schedule(seed, || {
                        pipeline(
                            3,
                            |tx| {
                                for v in 0..97u64 {
                                    if tx.send(v).is_err() {
                                        break;
                                    }
                                }
                            },
                            |_, v| v ^ 0xabcd,
                            |rx| {
                                let mut out = Vec::new();
                                while let Some(v) = rx.recv() {
                                    out.push(v);
                                }
                                out
                            },
                        )
                    })
                });
                assert_eq!(got, expect, "workers = {workers}, seed = {seed}");
            }
        }
    }

    #[test]
    fn pipeline_handles_empty_production() {
        let (_, count) = with_workers(4, || {
            pipeline(
                2,
                |_tx: &mut Sender<'_, u8>| {},
                |_, v| v,
                |rx| {
                    let mut n = 0;
                    while rx.recv().is_some() {
                        n += 1;
                    }
                    n
                },
            )
        });
        assert_eq!(count, 0);
    }

    #[test]
    fn channel_send_recv_round_trips_in_any_order() {
        let chan: Chan<u32> = Chan::with_capacity(8);
        assert_eq!(chan.capacity(), 8);
        for (idx, v) in [(2usize, 20u32), (0, 0), (1, 10)] {
            assert!(chan.send(idx, v).is_ok());
        }
        chan.close();
        assert_eq!(chan.recv(), Some((2, 20)));
        assert_eq!(chan.recv(), Some((0, 0)));
        assert_eq!(chan.recv(), Some((1, 10)));
        assert_eq!(chan.recv(), None);
        assert_eq!(chan.send(3, 30), Err(Closed(30)));
    }

    #[test]
    fn ordered_rx_reorders_across_the_channel() {
        let chan: Chan<u32> = Chan::with_capacity(8);
        for (idx, v) in [(1usize, 10u32), (2, 20), (0, 0)] {
            assert!(chan.send(idx, v).is_ok());
        }
        chan.close();
        let mut rx = OrderedRx {
            source: RxSource::Chan(&chan),
            pending: BTreeMap::new(),
            next_idx: 0,
        };
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.delivered(), 1);
        assert_eq!(rx.recv(), Some(10));
        assert_eq!(rx.recv(), Some(20));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        // A capacity-1 channel forces strict producer/worker alternation;
        // the pipeline must still complete and stay in order.
        let (_, got) = with_workers(4, || {
            pipeline(
                1,
                |tx| {
                    for v in 0..64u32 {
                        if tx.send(v).is_err() {
                            break;
                        }
                    }
                },
                |idx, v| (idx as u32) * 1000 + v,
                |rx| {
                    let mut out = Vec::new();
                    while let Some(v) = rx.recv() {
                        out.push(v);
                    }
                    out
                },
            )
        });
        let expect: Vec<u32> = (0..64u32).map(|v| v * 1000 + v).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn transform_panic_propagates_without_deadlock() {
        let result = std::panic::catch_unwind(|| {
            with_workers(2, || {
                pipeline(
                    2,
                    |tx| {
                        for v in 0..1000u32 {
                            if tx.send(v).is_err() {
                                break;
                            }
                        }
                    },
                    |_, v| {
                        assert!(v != 7, "boom");
                        v
                    },
                    |rx| while rx.recv().is_some() {},
                )
            })
        });
        assert!(result.is_err(), "the stage panic must propagate");
    }
}
