//! In-tree stand-in for the subset of the [`rand`] crate this workspace
//! uses, so the build has zero network dependencies.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors the handful of APIs the simulators and tests actually call:
//! [`rngs::SmallRng`] (here a xoshiro256++ generator seeded through
//! SplitMix64), the [`Rng`] extension trait with `gen`, `gen_range` and
//! `gen_bool`, and [`SeedableRng::seed_from_u64`]. Statistical quality is
//! more than adequate for simulation workloads; none of this is
//! cryptographic — key material comes from `wirecrypto::KeyGen`, never
//! from here.
//!
//! The package deliberately keeps the upstream crate name and module
//! layout (`rand::rngs::SmallRng`, `rand::{Rng, SeedableRng}`) so call
//! sites are source-compatible with rand 0.8 and the workspace can switch
//! back to the real crate by flipping one `[workspace.dependencies]`
//! entry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// Low-level uniform bit source. Object-safe: `next_u64` is the one
/// required method.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (upper half of a
    /// 64-bit draw, which are the strongest bits of xoshiro-family
    /// generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type accepted by [`SeedableRng::from_seed`].
    type Seed;

    /// Builds a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a single `u64`, expanding it with
    /// SplitMix64 as the upstream crate does.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods layered over [`RngCore`], mirroring the
/// `rand 0.8` extension-trait design.
pub trait Rng: RngCore {
    /// Samples a value of a type with a canonical uniform distribution
    /// (`u8`..`u64`, `usize`, `bool`, or `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a canonical uniform distribution drawable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` without modulo bias (rejection sampling
/// on the short unusable tail of the 64-bit space).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let draw = rng.next_u64();
        if draw < zone {
            return draw % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    // Full-width range: every draw is in range.
                    return start + rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample(rng);
        let value = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if value < self.end {
            value
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values within 1000 draws");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
