//! Concrete generators. Only [`SmallRng`] is provided — the single
//! generator the workspace uses.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator (xoshiro256++), mirroring
/// `rand::rngs::SmallRng` on 64-bit targets.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: [u64; 4],
}

/// SplitMix64 step, the canonical seed expander for xoshiro generators.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u64; 4];
        for (word, chunk) in state.iter_mut().zip(seed.chunks_exact(8)) {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            *word = u64::from_le_bytes(bytes);
        }
        if state.iter().all(|&w| w == 0) {
            // The all-zero state is a fixed point of xoshiro; remap it.
            return Self::seed_from_u64(0);
        }
        SmallRng { state }
    }

    fn seed_from_u64(mut seed: u64) -> Self {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = splitmix64(&mut seed);
        }
        SmallRng { state }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // xoshiro256++ with state {1, 2, 3, 4}: first output is
        // rotl(1 + 4, 23) + 1 = (5 << 23) + 1.
        let mut rng = SmallRng::from_seed({
            let mut seed = [0u8; 32];
            seed[0] = 1;
            seed[8] = 2;
            seed[16] = 3;
            seed[24] = 4;
            seed
        });
        assert_eq!(rng.next_u64(), (5u64 << 23) + 1);
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }
}
