//! The star-of-links multicast topology.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::link::{LossModel, MarkovLink};
use crate::SimTime;

/// Loss class of one user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserClass {
    /// Receiver link at `p_high`.
    HighLoss,
    /// Receiver link at `p_low`.
    LowLoss,
}

/// Topology and loss parameters (defaults are the paper's).
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Number of users (receiver links).
    pub n_users: usize,
    /// Fraction of users in the high-loss class.
    pub alpha: f64,
    /// Receiver loss rate of high-loss users.
    pub p_high: f64,
    /// Receiver loss rate of low-loss users.
    pub p_low: f64,
    /// Source-link loss rate.
    pub p_source: f64,
    /// Mean burst cycle of every link, milliseconds.
    pub burst_cycle_ms: f64,
    /// Use independent (Bernoulli) loss instead of Markov bursts — the
    /// ablation baseline for interleaving/burstiness studies.
    pub independent_loss: bool,
    /// Server inter-packet send spacing, milliseconds (10 pkt/s default).
    pub send_interval_ms: f64,
    /// One-way server-to-user latency, milliseconds.
    pub one_way_delay_ms: f64,
    /// RNG seed; every link derives an independent stream from it.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            n_users: 4096,
            alpha: 0.20,
            p_high: 0.20,
            p_low: 0.02,
            p_source: 0.01,
            burst_cycle_ms: 100.0,
            independent_loss: false,
            send_interval_ms: 100.0,
            one_way_delay_ms: 25.0,
            seed: 1,
        }
    }
}

/// The simulated network: one source link plus per-user receiver links.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    source: MarkovLink,
    receivers: Vec<MarkovLink>,
    classes: Vec<UserClass>,
}

impl Network {
    /// Builds the topology: exactly `round(alpha * n)` high-loss users,
    /// assigned pseudo-randomly by the seed.
    pub fn new(config: NetworkConfig) -> Self {
        assert!(config.n_users > 0, "need at least one user");
        assert!((0.0..=1.0).contains(&config.alpha));
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xC0FF_EE00_D15E_A5E5);

        // Choose the high-loss subset by a seeded shuffle of indices.
        let n_high = (config.alpha * config.n_users as f64).round() as usize;
        let mut order: Vec<usize> = (0..config.n_users).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut classes = vec![UserClass::LowLoss; config.n_users];
        for &u in order.iter().take(n_high) {
            classes[u] = UserClass::HighLoss;
        }

        let model = if config.independent_loss {
            LossModel::Independent
        } else {
            LossModel::Burst {
                cycle_ms: config.burst_cycle_ms,
            }
        };
        let receivers = classes
            .iter()
            .map(|c| {
                let p = match c {
                    UserClass::HighLoss => config.p_high,
                    UserClass::LowLoss => config.p_low,
                };
                MarkovLink::with_model(p, model, rng.gen())
            })
            .collect();

        Network {
            source: MarkovLink::with_model(config.p_source, model, rng.gen()),
            receivers,
            classes,
            config,
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.receivers.len()
    }

    /// Loss class of a user.
    pub fn class_of(&self, user: usize) -> UserClass {
        self.classes[user]
    }

    /// Multicasts one packet at time `now`: the packet first crosses the
    /// source link (loss there hits everyone), then each receiver link.
    /// Returns per-user delivery flags.
    pub fn multicast(&mut self, now: SimTime) -> Vec<bool> {
        let mut delivered = Vec::new();
        self.multicast_into(now, &mut delivered);
        delivered
    }

    /// Allocation-free [`Network::multicast`]: clears `delivered` and
    /// fills it with one flag per user, reusing the buffer's capacity.
    /// The per-packet hot path of the transport simulation calls this
    /// thousands of times per rekey message with the same scratch buffer.
    // xcheck: no_alloc
    pub fn multicast_into(&mut self, now: SimTime, delivered: &mut Vec<bool>) {
        obs::counter_add("net.multicast_packets", 1);
        delivered.clear();
        if !self.source.transmit(now) {
            delivered.resize(self.receivers.len(), false);
            return;
        }
        delivered.extend(self.receivers.iter_mut().map(|link| link.transmit(now)));
        obs::counter_add(
            "net.deliveries",
            delivered.iter().filter(|&&ok| ok).count() as u64,
        );
    }

    /// Multicast where only a subset of users still listens (the common
    /// case in later rounds); non-listening links still advance their loss
    /// process implicitly through future queries.
    pub fn multicast_to(&mut self, now: SimTime, listeners: &[usize]) -> Vec<(usize, bool)> {
        let mut delivered = Vec::new();
        self.multicast_to_into(now, listeners, &mut delivered);
        listeners.iter().copied().zip(delivered).collect()
    }

    /// Allocation-free [`Network::multicast_to`]: clears `delivered` and
    /// fills it with one flag per entry of `listeners`, in order, reusing
    /// the buffer's capacity across packets.
    // xcheck: no_alloc
    pub fn multicast_to_into(
        &mut self,
        now: SimTime,
        listeners: &[usize],
        delivered: &mut Vec<bool>,
    ) {
        obs::counter_add("net.multicast_packets", 1);
        delivered.clear();
        let source_ok = self.source.transmit(now);
        delivered.extend(
            listeners
                .iter()
                .map(|&u| source_ok && self.receivers[u].transmit(now)),
        );
        obs::counter_add(
            "net.deliveries",
            delivered.iter().filter(|&&ok| ok).count() as u64,
        );
    }

    /// Unicasts one packet to `user` at time `now` (source + receiver
    /// link, same as multicast but for one destination).
    // xcheck: no_alloc
    pub fn unicast(&mut self, now: SimTime, user: usize) -> bool {
        obs::counter_add("net.unicast_packets", 1);
        let ok = self.source.transmit(now) && self.receivers[user].transmit(now);
        if ok {
            obs::counter_add("net.unicast_delivered", 1);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(n: usize, alpha: f64, seed: u64) -> Network {
        Network::new(NetworkConfig {
            n_users: n,
            alpha,
            seed,
            ..NetworkConfig::default()
        })
    }

    #[test]
    fn high_loss_population_matches_alpha() {
        let net = small(1000, 0.20, 3);
        let high = (0..1000)
            .filter(|&u| net.class_of(u) == UserClass::HighLoss)
            .count();
        assert_eq!(high, 200);
    }

    #[test]
    fn alpha_zero_and_one() {
        let net0 = small(100, 0.0, 3);
        assert!((0..100).all(|u| net0.class_of(u) == UserClass::LowLoss));
        let net1 = small(100, 1.0, 3);
        assert!((0..100).all(|u| net1.class_of(u) == UserClass::HighLoss));
    }

    #[test]
    fn multicast_loss_rates_by_class() {
        let mut net = small(400, 0.5, 17);
        let mut received = vec![0u32; 400];
        let rounds = 4000;
        for i in 0..rounds {
            // Wide spacing to decorrelate the burst process.
            let got = net.multicast(i as f64 * 500.0);
            for (u, ok) in got.iter().enumerate() {
                if *ok {
                    received[u] += 1;
                }
            }
        }
        // Expected delivery: (1 - p_source)(1 - p_class).
        let mut high_rate = Vec::new();
        let mut low_rate = Vec::new();
        for (u, &r) in received.iter().enumerate() {
            let rate = r as f64 / rounds as f64;
            match net.class_of(u) {
                UserClass::HighLoss => high_rate.push(rate),
                UserClass::LowLoss => low_rate.push(rate),
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let high = mean(&high_rate);
        let low = mean(&low_rate);
        assert!(
            (high - 0.99 * 0.80).abs() < 0.02,
            "high-class delivery {high}"
        );
        assert!((low - 0.99 * 0.98).abs() < 0.02, "low-class delivery {low}");
    }

    #[test]
    fn source_loss_hits_everyone_together() {
        // With p_source ~ 50% and lossless receivers, outcomes per packet
        // are all-true or all-false.
        let mut net = Network::new(NetworkConfig {
            n_users: 50,
            alpha: 0.0,
            p_low: 0.0,
            p_source: 0.5,
            seed: 9,
            ..NetworkConfig::default()
        });
        let mut saw_all_false = false;
        for i in 0..2000 {
            let got = net.multicast(i as f64 * 300.0);
            let any = got.iter().any(|&b| b);
            let all = got.iter().all(|&b| b);
            assert!(any == all, "partial delivery despite lossless receivers");
            saw_all_false |= !any;
        }
        assert!(saw_all_false, "source link never dropped at p = 0.5");
    }

    #[test]
    fn determinism() {
        let run = |seed: u64| -> Vec<bool> {
            let mut net = small(64, 0.3, seed);
            (0..200)
                .flat_map(|i| net.multicast(i as f64 * 40.0))
                .collect()
        };
        assert_eq!(run(12), run(12));
        assert_ne!(run(12), run(13));
    }

    #[test]
    fn unicast_uses_both_links() {
        let mut net = Network::new(NetworkConfig {
            n_users: 4,
            alpha: 1.0,
            p_high: 0.5,
            p_source: 0.0,
            seed: 20,
            ..NetworkConfig::default()
        });
        let mut delivered = 0;
        let trials = 20_000;
        for i in 0..trials {
            if net.unicast(i as f64 * 400.0, 0) {
                delivered += 1;
            }
        }
        let rate = delivered as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.02, "unicast delivery {rate}");
    }

    #[test]
    fn multicast_to_subset() {
        let mut net = small(100, 0.0, 4);
        let listeners = vec![3, 50, 99];
        let got = net.multicast_to(0.0, &listeners);
        assert_eq!(got.len(), 3);
        assert!(got.iter().map(|(u, _)| *u).eq(listeners.iter().copied()));
    }
}
