//! A minimal deterministic discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, breaking
        // ties by insertion order (FIFO) for determinism. `total_cmp`
        // gives NaN a fixed order instead of panicking (scheduling a NaN
        // time is already rejected by `schedule`'s monotonicity assert).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An earliest-first event queue with FIFO tie-breaking and a monotone
/// clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            next_seq: 0,
        }
    }

    /// Current simulation time: the time of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics when scheduling into the past (before the last pop).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        assert!(delay >= 0.0);
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.schedule(9.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.0);
        q.schedule_in(1.5, ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 3.5);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
