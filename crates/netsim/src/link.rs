//! The two-state Markov burst-loss link.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::SimTime;

/// How a link loses packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Two-state Markov bursts with the given mean cycle (the paper's
    /// model: mean bad period `cycle * p`, mean good `cycle * (1 - p)`).
    Burst {
        /// Mean burst cycle in milliseconds.
        cycle_ms: f64,
    },
    /// Independent (Bernoulli) loss per packet — the ablation baseline
    /// that shows why block interleaving matters under bursts.
    Independent,
}

/// A link alternating between *good* (delivering) and *bad* (dropping)
/// periods with exponentially distributed holding times.
///
/// Parameterised by the stationary loss rate `p` and the burst cycle `c`
/// (default 100 ms): mean bad duration `c * p`, mean good duration
/// `c * (1 - p)`. Queries must come at non-decreasing times.
#[derive(Debug, Clone)]
pub struct MarkovLink {
    loss_rate: f64,
    independent: bool,
    mean_bad_ms: f64,
    mean_good_ms: f64,
    bad: bool,
    /// Time at which the current period ends.
    until: SimTime,
    rng: SmallRng,
    last_query: SimTime,
}

impl MarkovLink {
    /// Creates a link with stationary loss rate `p` (`0 <= p < 1`) and the
    /// given burst cycle in milliseconds.
    pub fn new(p: f64, burst_cycle_ms: f64, seed: u64) -> Self {
        Self::with_model(
            p,
            LossModel::Burst {
                cycle_ms: burst_cycle_ms,
            },
            seed,
        )
    }

    /// Creates a link with an explicit loss model.
    pub fn with_model(p: f64, model: LossModel, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss rate {p} outside [0, 1)");
        let mut rng = SmallRng::seed_from_u64(seed);
        match model {
            LossModel::Burst { cycle_ms } => {
                assert!(cycle_ms > 0.0);
                // Start in the stationary distribution.
                let bad = p > 0.0 && rng.gen_bool(p);
                let mut link = MarkovLink {
                    loss_rate: p,
                    independent: false,
                    mean_bad_ms: cycle_ms * p,
                    mean_good_ms: cycle_ms * (1.0 - p),
                    bad,
                    until: 0.0,
                    rng,
                    last_query: 0.0,
                };
                link.until = link.sample_holding();
                link
            }
            LossModel::Independent => MarkovLink {
                loss_rate: p,
                independent: true,
                mean_bad_ms: 0.0,
                mean_good_ms: 0.0,
                bad: false,
                until: 0.0,
                rng,
                last_query: 0.0,
            },
        }
    }

    /// A link that never loses (`p = 0`).
    pub fn lossless() -> Self {
        MarkovLink::new(0.0, 100.0, 0)
    }

    /// Stationary loss rate of this link.
    pub fn loss_rate(&self) -> f64 {
        self.loss_rate
    }

    fn sample_holding(&mut self) -> SimTime {
        let mean = if self.bad {
            self.mean_bad_ms
        } else {
            self.mean_good_ms
        };
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    fn advance_to(&mut self, now: SimTime) {
        debug_assert!(
            now >= self.last_query - 1e-9,
            "MarkovLink queried backwards in time: {now} < {}",
            self.last_query
        );
        self.last_query = now;
        if self.loss_rate == 0.0 {
            return;
        }
        while self.until <= now {
            self.bad = !self.bad;
            let hold = self.sample_holding();
            self.until += hold;
        }
    }

    /// Sends one packet at simulation time `now`; returns true when the
    /// packet gets through.
    pub fn transmit(&mut self, now: SimTime) -> bool {
        if self.independent {
            debug_assert!(now >= self.last_query - 1e-9);
            self.last_query = now;
            return self.loss_rate == 0.0 || !self.rng.gen_bool(self.loss_rate);
        }
        self.advance_to(now);
        !self.bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_loss(p: f64, seed: u64, packets: usize, spacing: f64) -> f64 {
        let mut link = MarkovLink::new(p, 100.0, seed);
        let mut lost = 0;
        for i in 0..packets {
            if !link.transmit(i as f64 * spacing) {
                lost += 1;
            }
        }
        lost as f64 / packets as f64
    }

    #[test]
    fn lossless_link_never_drops() {
        let mut link = MarkovLink::lossless();
        for i in 0..10_000 {
            assert!(link.transmit(i as f64 * 13.7));
        }
    }

    #[test]
    fn stationary_loss_rate_matches_p() {
        for &p in &[0.02, 0.20, 0.50] {
            // Widely spaced packets decorrelate; loss fraction ~ p.
            let got = empirical_loss(p, 99, 200_000, 997.0);
            assert!((got - p).abs() < 0.01, "p = {p}, measured {got}");
        }
    }

    #[test]
    fn closely_spaced_packets_are_correlated() {
        // With 1 ms spacing inside a 100 ms burst cycle, consecutive
        // losses cluster: P(loss | previous loss) >> p.
        let p = 0.2;
        let mut link = MarkovLink::new(p, 100.0, 7);
        let mut prev_lost = false;
        let (mut after_loss, mut loss_after_loss) = (0u64, 0u64);
        for i in 0..500_000 {
            let lost = !link.transmit(i as f64);
            if prev_lost {
                after_loss += 1;
                if lost {
                    loss_after_loss += 1;
                }
            }
            prev_lost = lost;
        }
        let cond = loss_after_loss as f64 / after_loss as f64;
        assert!(
            cond > 3.0 * p,
            "conditional loss {cond} not bursty versus stationary {p}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let pattern = |seed: u64| -> Vec<bool> {
            let mut link = MarkovLink::new(0.3, 100.0, seed);
            (0..1000).map(|i| link.transmit(i as f64 * 10.0)).collect()
        };
        assert_eq!(pattern(5), pattern(5));
        assert_ne!(pattern(5), pattern(6));
    }

    #[test]
    fn mean_burst_duration_scales_with_p() {
        // Measure mean bad-period length by dense sampling.
        let p = 0.3;
        let mut link = MarkovLink::new(p, 100.0, 11);
        let dt = 0.25;
        let mut bursts = Vec::new();
        let mut current: Option<f64> = None;
        for i in 0..4_000_000u64 {
            let t = i as f64 * dt;
            let lost = !link.transmit(t);
            match (lost, current) {
                (true, None) => current = Some(dt),
                (true, Some(len)) => current = Some(len + dt),
                (false, Some(len)) => {
                    bursts.push(len);
                    current = None;
                }
                (false, None) => {}
            }
        }
        let mean = bursts.iter().sum::<f64>() / bursts.len() as f64;
        let expect = 100.0 * p;
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean burst {mean}, expected ~{expect}"
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn loss_rate_one_rejected() {
        let _ = MarkovLink::new(1.0, 100.0, 0);
    }

    #[test]
    fn independent_mode_matches_rate_and_is_memoryless() {
        let p = 0.2;
        let mut link = MarkovLink::with_model(p, LossModel::Independent, 5);
        let mut lost = 0u64;
        let (mut after_loss, mut loss_after_loss) = (0u64, 0u64);
        let mut prev = false;
        let n = 400_000u64;
        for i in 0..n {
            let l = !link.transmit(i as f64); // densely spaced on purpose
            if l {
                lost += 1;
            }
            if prev {
                after_loss += 1;
                if l {
                    loss_after_loss += 1;
                }
            }
            prev = l;
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - p).abs() < 0.01, "rate {rate}");
        let cond = loss_after_loss as f64 / after_loss as f64;
        assert!(
            (cond - p).abs() < 0.03,
            "independent loss must be memoryless even at dense spacing: {cond}"
        );
    }
}
