//! Deterministic discrete-event network simulation for rekey transport.
//!
//! The paper evaluates its protocol on the topology of Nonnenmacher et
//! al.: the key server reaches a loss-free backbone through one *source
//! link*, and each user hangs off the backbone through its own *receiver
//! link*. Every link is an independent two-state (good/bad) continuous-time
//! Markov process; during *bad* periods all packets on the link are lost.
//! With loss rate `p`, the mean bad-period duration is `100 p` ms and the
//! mean good-period duration is `100 (1 - p)` ms, so the stationary loss
//! probability is exactly `p` with a 100 ms burst cycle — the paper's
//! burst-loss model.
//!
//! A fraction `alpha` of users are *high-loss* receivers (`p_high`, default
//! 20%); the rest see `p_low` (default 2%); the source link has `p_source`
//! (default 1%).
//!
//! Everything is driven by explicit simulation time and a seeded RNG, so
//! runs are exactly reproducible. The [`EventQueue`] provides the usual
//! discrete-event core with deterministic FIFO tie-breaking.

//! # Example
//!
//! ```
//! use netsim::{Network, NetworkConfig};
//!
//! let mut net = Network::new(NetworkConfig {
//!     n_users: 8,
//!     alpha: 0.5,   // half the receivers on high-loss links
//!     seed: 7,
//!     ..NetworkConfig::default()
//! });
//! let delivered = net.multicast(0.0);
//! assert_eq!(delivered.len(), 8);
//! // Same seed, same losses: simulations are exactly reproducible.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod link;
mod network;

pub use event::EventQueue;
pub use link::{LossModel, MarkovLink};
pub use network::{Network, NetworkConfig, UserClass};

/// Simulation time in milliseconds.
pub type SimTime = f64;
