//! Dynamic half of the `// xcheck: no_alloc` contract for the netsim
//! per-packet hot paths: with a warm `delivered` scratch buffer,
//! [`Network::multicast_into`], [`Network::multicast_to_into`], and
//! [`Network::unicast`] must perform zero heap allocations.

use netsim::{Network, NetworkConfig};

#[global_allocator]
static ALLOC: xcheck_rt::CountingAlloc = xcheck_rt::CountingAlloc;

fn network() -> Network {
    Network::new(NetworkConfig {
        n_users: 256,
        seed: 7,
        ..NetworkConfig::default()
    })
}

#[test]
fn multicast_into_is_allocation_free_with_warm_scratch() {
    xcheck_rt::assert_counting();
    let mut net = network();
    let mut delivered = Vec::new();
    net.multicast_into(0.0, &mut delivered); // sizes the buffer
    for t in 1..50u64 {
        xcheck_rt::assert_zero_alloc("Network::multicast_into", || {
            net.multicast_into(t as f64 * 100.0, &mut delivered)
        });
        assert_eq!(delivered.len(), 256);
    }
}

#[test]
fn multicast_to_into_is_allocation_free_with_warm_scratch() {
    xcheck_rt::assert_counting();
    let mut net = network();
    let listeners: Vec<usize> = (0..128).map(|i| i * 2).collect();
    let mut delivered = Vec::new();
    net.multicast_to_into(0.0, &listeners, &mut delivered); // sizes the buffer
    for t in 1..50u64 {
        xcheck_rt::assert_zero_alloc("Network::multicast_to_into", || {
            net.multicast_to_into(t as f64 * 100.0, &listeners, &mut delivered)
        });
        assert_eq!(delivered.len(), listeners.len());
    }
}

#[test]
fn unicast_is_allocation_free() {
    xcheck_rt::assert_counting();
    let mut net = network();
    // Warm-up: with `--features obs`, the delivered-counter slot only
    // registers (one leaked Box + a registry push) on the first unicast
    // that actually gets through — drive until that has happened.
    let mut warmed = false;
    for t in 0..100u64 {
        warmed |= net.unicast(t as f64 * 50.0, (t % 256) as usize);
        if warmed {
            break;
        }
    }
    assert!(warmed, "warm-up unicasts must get at least one through");
    let mut delivered_any = false;
    for t in 100..300u64 {
        let ok = xcheck_rt::assert_zero_alloc("Network::unicast", || {
            net.unicast(t as f64 * 50.0, (t % 256) as usize)
        });
        delivered_any |= ok;
    }
    assert!(delivered_any, "some unicasts must get through");
}
