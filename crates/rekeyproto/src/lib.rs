//! Server and user protocol state machines for reliable group rekeying.
//!
//! This crate is **sans-I/O**: the state machines consume packets and emit
//! packets/decisions, and a driver (the `grouprekey` crate) moves bytes
//! over a real or simulated network. The machines implement the paper's
//! Figures 2, 3, 11, 22, 26 and 27:
//!
//! * [`ServerController`] — cross-message state: the proactivity factor
//!   `rho` and the NACK target `numNACK`, with the `AdjustRho` adaptation
//!   (Figure 11) and the `numNACK` deadline heuristics.
//! * [`ServerSession`] — one rekey message at the server: round-one
//!   multicast schedule (ENC + proactive PARITY, interleaved), NACK
//!   aggregation into `amax[i]`, reactive rounds, the multicast→unicast
//!   switch rule, and escalating USR duplication (Figure 22).
//! * [`UserSession`] — one rekey message at a user: ID rederivation from
//!   `maxKID` (Theorem 4.2), packet collection, FEC decoding, block-ID
//!   estimation for lost specific packets, and NACK construction.

//! # Example
//!
//! ```
//! use rekeyproto::{RoundDecision, ServerConfig, ServerController};
//!
//! let controller = ServerController::new(ServerConfig::default());
//! // An empty rekey message completes immediately.
//! let mut session = controller.begin_message(vec![], 100);
//! assert!(session.start().is_empty());
//! assert_eq!(session.end_of_round(), RoundDecision::Done);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjust;
mod server;
/// Round-duration adaptation (paper Section 7.1).
pub mod timing;
mod user;

pub use adjust::{adjust_rho, update_num_nack, AdjustConfig};
pub use server::{
    RoundDecision, ServerConfig, ServerController, ServerSession, ServerStats, UnicastSend,
};
pub use timing::RoundTimer;
pub use user::{UserOutcome, UserSession};
