//! The user side of the rekey transport protocol (Figures 3 and 27).

use std::collections::BTreeMap;

use keytree::{ident, NodeId};
use rekeymsg::estimate::BlockIdEstimator;
use rekeymsg::{EncPacket, Layout, NackPacket, NackRequest, Packet, UsrPacket};

/// How a user ended up with its keys (or didn't).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserOutcome {
    /// Received (or FEC-decoded) its specific ENC packet.
    Enc(EncPacket),
    /// Served by unicast.
    Usr(UsrPacket),
    /// Still waiting.
    Pending,
}

/// Per-message user state machine.
///
/// Feed every packet the user receives through [`UserSession::receive`];
/// at each round boundary call [`UserSession::end_of_round`], which either
/// reports success or produces the NACK to send. FEC decoding is attempted
/// lazily at round boundaries (and opportunistically when the specific
/// packet arrives directly).
#[derive(Debug)]
pub struct UserSession {
    /// The user's u-node ID before this rekey message.
    old_id: NodeId,
    /// Tree degree.
    d: u32,
    /// FEC block size.
    k: usize,
    layout: Layout,
    /// Rederived current ID (from the first ENC packet's `maxKID`).
    current_id: Option<NodeId>,
    /// Wire message ID this session accepts (`None` = first seen wins).
    expected_msg_id: Option<u8>,
    msg_id: Option<u8>,
    /// Received share bodies: block -> share index -> FEC body.
    shares: BTreeMap<u8, BTreeMap<usize, Vec<u8>>>,
    /// Persistent FEC decoder, built on first use: the O(k²) Lagrange
    /// setup is paid once per session, not per decode attempt.
    decoder: Option<rse::Decoder>,
    estimator: Option<BlockIdEstimator>,
    max_block_seen: Option<u8>,
    outcome: UserOutcome,
    /// Rounds observed so far (1 = success within the first round).
    rounds: usize,
    success_round: Option<usize>,
}

impl UserSession {
    /// Creates the session. `old_id` is the u-node ID the user held before
    /// the batch (for a newly joined user, the ID granted at admission).
    pub fn new(old_id: NodeId, d: u32, k: usize, layout: Layout) -> Self {
        UserSession {
            old_id,
            d,
            k,
            layout,
            current_id: None,
            expected_msg_id: None,
            msg_id: None,
            shares: BTreeMap::new(),
            decoder: None,
            estimator: None,
            max_block_seen: None,
            outcome: UserOutcome::Pending,
            rounds: 0,
            success_round: None,
        }
    }

    /// Restricts the session to one wire message ID: packets from other
    /// rekey messages (late retransmissions, overlap at the 6-bit
    /// wrap-around) are ignored instead of poisoning the share sets.
    pub fn expect_msg_id(mut self, msg_id: u8) -> Self {
        self.expected_msg_id = Some(msg_id & 0x3f);
        self
    }

    /// The user's current (rederived) ID, once known.
    pub fn current_id(&self) -> Option<NodeId> {
        self.current_id
    }

    /// True once the user holds everything it needs.
    pub fn is_satisfied(&self) -> bool {
        !matches!(self.outcome, UserOutcome::Pending)
    }

    /// The outcome so far.
    pub fn outcome(&self) -> &UserOutcome {
        &self.outcome
    }

    /// Number of rounds the user needed (defined once satisfied).
    pub fn rounds_to_success(&self) -> Option<usize> {
        self.success_round
    }

    /// Handles one received packet.
    pub fn receive(&mut self, pkt: &Packet) {
        if self.is_satisfied() {
            return;
        }
        if let Some(expect) = self.expected_msg_id {
            let wire_id = match pkt {
                Packet::Enc(p) => Some(p.msg_id),
                Packet::Parity(p) => Some(p.msg_id),
                Packet::Usr(p) => Some(p.msg_id),
                Packet::Nack(_) => None,
            };
            if wire_id.is_some_and(|id| id != expect) {
                return;
            }
        }
        match pkt {
            Packet::Enc(enc) => self.receive_enc(enc),
            Packet::Parity(par) => {
                self.msg_id.get_or_insert(par.msg_id);
                self.max_block_seen = Some(self.max_block_seen.unwrap_or(0).max(par.block_id));
                self.shares
                    .entry(par.block_id)
                    .or_default()
                    .insert(self.k + par.seq as usize, par.body.clone());
            }
            Packet::Usr(usr) => {
                self.current_id = Some(usr.new_user_id as NodeId);
                self.succeed(UserOutcome::Usr(usr.clone()));
            }
            Packet::Nack(_) => {} // users never receive NACKs
        }
    }

    fn receive_enc(&mut self, enc: &EncPacket) {
        self.msg_id.get_or_insert(enc.msg_id);
        self.max_block_seen = Some(self.max_block_seen.unwrap_or(0).max(enc.block_id));

        // First ENC packet reveals maxKID: rederive our ID (Theorem 4.2).
        if self.current_id.is_none() {
            self.current_id = ident::derive_current_id(self.old_id, enc.max_kid as NodeId, self.d);
        }
        let Some(m) = self.current_id else {
            // We are not in the tree any more; nothing to collect.
            return;
        };
        let m16 = m as u16;

        if enc.serves(m16) {
            self.succeed(UserOutcome::Enc(enc.clone()));
            return;
        }

        self.estimator
            .get_or_insert_with(|| BlockIdEstimator::new(m16, self.k, self.d))
            .observe(enc);
        self.shares
            .entry(enc.block_id)
            .or_default()
            .insert(enc.seq as usize, enc.fec_body(&self.layout));
    }

    fn succeed(&mut self, outcome: UserOutcome) {
        self.outcome = outcome;
        // Success in the current round (rounds increments at boundaries,
        // so during round r `self.rounds` is r - 1).
        self.success_round = Some(self.rounds + 1);
        self.shares.clear();
    }

    /// Attempts FEC decoding of any candidate block with >= k shares; on
    /// success extracts the specific ENC packet if it is in that block.
    ///
    /// Deliberately does not require `current_id` up front: a user whose
    /// every ENC packet was lost (parity-only reception) first learns
    /// `maxKID` from a decoded body, so the ID derivation happens against
    /// the reconstructed packets below.
    fn try_decode(&mut self) {
        if self.is_satisfied() {
            return;
        }
        let (low, high) = match self.estimator.as_ref().and_then(|e| e.range()) {
            Some(r) => r,
            None => {
                // No range: consider every block we have shares for.
                let lo = self.shares.keys().next().copied().unwrap_or(0) as u32;
                let hi = self.shares.keys().last().copied().unwrap_or(0) as u32;
                (lo, hi)
            }
        };
        let candidates: Vec<u8> = self
            .shares
            .keys()
            .copied()
            .filter(|&b| (b as u32) >= low && (b as u32) <= high)
            .collect();
        for b in candidates {
            let block_shares = &self.shares[&b];
            if block_shares.len() < self.k {
                continue;
            }
            let shares: Vec<rse::Share> = block_shares
                .iter()
                .map(|(&index, body)| rse::Share {
                    index,
                    data: body.clone(),
                })
                .collect();
            let Ok(bodies) = self.decode_block(&shares) else {
                continue;
            };
            let msg_id = self.msg_id.unwrap_or(0);
            for (seq, body) in bodies.iter().enumerate() {
                if let Ok(enc) = EncPacket::from_fec_body(body, &self.layout, msg_id, b, seq as u8)
                {
                    if self.current_id.is_none() {
                        self.current_id =
                            ident::derive_current_id(self.old_id, enc.max_kid as NodeId, self.d);
                    }
                    let Some(m) = self.current_id else {
                        // Not in the tree any more; no packet can serve us.
                        return;
                    };
                    if enc.serves(m as u16) {
                        self.succeed(UserOutcome::Enc(enc));
                        return;
                    }
                }
            }
            // Decoded a full block that does not contain our packet: the
            // estimator range was loose. Keep looking at other candidates.
        }
    }

    /// Runs one decode attempt through the session's persistent decoder,
    /// constructing it on first use.
    fn decode_block(&mut self, shares: &[rse::Share]) -> Result<Vec<Vec<u8>>, rse::RseError> {
        let decoder = match self.decoder.as_mut() {
            Some(d) => d,
            None => self.decoder.insert(rse::Decoder::new(self.k)?),
        };
        decoder.decode(shares)
    }

    /// Round boundary: returns the NACK to send, or `None` when satisfied.
    pub fn end_of_round(&mut self) -> Option<NackPacket> {
        self.try_decode();
        self.rounds += 1;
        if self.is_satisfied() {
            return None;
        }
        let msg_id = self.msg_id.unwrap_or(0);

        // Determine which blocks to request parities for.
        let range = self.estimator.as_ref().and_then(|e| e.range());
        let (low, high) = match (range, self.max_block_seen) {
            (Some((lo, hi)), _) => (lo, hi),
            (None, Some(maxb)) => {
                let lo = self.estimator.as_ref().map(|e| e.low()).unwrap_or(0);
                (lo.min(maxb as u32), maxb as u32)
            }
            (None, None) => (0, 0), // total loss: ask for block 0
        };
        let mut requests = Vec::new();
        for b in low..=high.min(255) {
            let have = self.shares.get(&(b as u8)).map(|s| s.len()).unwrap_or(0);
            let need = self.k.saturating_sub(have);
            if need > 0 {
                requests.push(NackRequest {
                    count: need.min(255) as u8,
                    block_id: b as u8,
                });
            }
        }
        if requests.is_empty() {
            // All candidate blocks have k shares but none decoded to our
            // packet — widen to a full re-request of the lowest block.
            requests.push(NackRequest {
                count: self.k.min(255) as u8,
                block_id: low as u8,
            });
        }
        Some(NackPacket { msg_id, requests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekeymsg::BlockSet;
    use wirecrypto::{SealedKey, SymKey};

    fn layout() -> Layout {
        Layout::DEFAULT
    }

    /// A toy message: 6 ENC packets (k = 3, 2 blocks), one user per packet,
    /// user IDs 101..=106, maxKID 50, degree 4.
    fn toy_message() -> BlockSet {
        let packets: Vec<EncPacket> = (0..6u16)
            .map(|i| EncPacket {
                msg_id: 9,
                block_id: 0,
                seq: 0,
                duplicate: false,
                max_kid: 50,
                frm_id: 101 + i,
                to_id: 101 + i,
                entries: vec![(
                    101 + i,
                    SealedKey::seal(
                        &SymKey::from_bytes([i as u8; 16]),
                        &SymKey::from_bytes([7; 16]),
                        0,
                    ),
                )],
            })
            .collect();
        BlockSet::new(packets, 3, layout())
    }

    fn user(old_id: NodeId) -> UserSession {
        UserSession::new(old_id, 4, 3, layout())
    }

    #[test]
    fn direct_reception_succeeds_in_round_one() {
        let blocks = toy_message();
        let mut u = user(103);
        // Deliver everything.
        for b in 0..2 {
            for p in &blocks.block(b).unwrap().packets {
                u.receive(&Packet::Enc(p.clone()));
            }
        }
        assert!(u.is_satisfied());
        assert_eq!(u.current_id(), Some(103));
        assert_eq!(u.end_of_round(), None);
        assert_eq!(u.rounds_to_success(), Some(1));
        match u.outcome() {
            UserOutcome::Enc(e) => assert!(e.serves(103)),
            other => panic!("outcome {other:?}"),
        }
    }

    #[test]
    fn fec_decode_recovers_lost_specific_packet() {
        let mut blocks = toy_message();
        let pars = blocks.mint_parities(0, 1).unwrap();
        let mut u = user(102); // specific packet is block 0, seq 1
                               // Lose it; deliver block 0 seq 0 and 2 plus one parity.
        let b0 = blocks.block(0).unwrap();
        u.receive(&Packet::Enc(b0.packets[0].clone()));
        u.receive(&Packet::Enc(b0.packets[2].clone()));
        u.receive(&Packet::Parity(pars[0].clone()));
        assert!(!u.is_satisfied(), "needs decode first");
        assert_eq!(u.end_of_round(), None, "decoded at the round boundary");
        assert!(u.is_satisfied());
        match u.outcome() {
            UserOutcome::Enc(e) => {
                assert!(e.serves(102));
                assert_eq!(e.entries, b0.packets[1].entries);
            }
            other => panic!("outcome {other:?}"),
        }
    }

    #[test]
    fn nack_requests_missing_parities_for_estimated_block() {
        let blocks = toy_message();
        let mut u = user(102);
        // Receives only block 0 seq 2 (after its lost packet) and block 1
        // seq 0 — pins block 0 and leaves it 2 shares short.
        u.receive(&Packet::Enc(blocks.block(0).unwrap().packets[2].clone()));
        u.receive(&Packet::Enc(blocks.block(1).unwrap().packets[0].clone()));
        let nack = u.end_of_round().expect("unsatisfied");
        assert_eq!(nack.msg_id, 9);
        assert_eq!(
            nack.requests,
            vec![NackRequest {
                count: 2,
                block_id: 0
            }]
        );
    }

    #[test]
    fn nack_covers_range_when_block_ambiguous() {
        let blocks = toy_message();
        let mut u = user(104); // specific is block 1, seq 0
                               // Only receives block 0 seq 0 (range below it, middle of block):
                               // low stays 0, step-6 bound caps high.
        u.receive(&Packet::Enc(blocks.block(0).unwrap().packets[0].clone()));
        let nack = u.end_of_round().expect("unsatisfied");
        assert!(!nack.requests.is_empty());
        // Every request is for a block >= 0 and the true block 1 is
        // covered by the range.
        assert!(nack.requests.iter().any(|r| r.block_id == 1));
    }

    #[test]
    fn total_loss_requests_block_zero() {
        let mut u = user(101);
        let nack = u.end_of_round().expect("nothing received");
        assert_eq!(nack.requests.len(), 1);
        assert_eq!(nack.requests[0].block_id, 0);
        assert_eq!(nack.requests[0].count, 3);
    }

    #[test]
    fn usr_packet_satisfies_and_updates_id() {
        let mut u = user(102);
        u.receive(&Packet::Usr(UsrPacket {
            msg_id: 9,
            new_user_id: 409,
            sealed: vec![],
        }));
        assert!(u.is_satisfied());
        assert_eq!(u.current_id(), Some(409));
    }

    #[test]
    fn duplicate_shares_do_not_inflate_counts() {
        let blocks = toy_message();
        let mut u = user(102);
        let pkt = blocks.block(0).unwrap().packets[0].clone();
        u.receive(&Packet::Enc(pkt.clone()));
        u.receive(&Packet::Enc(pkt.clone()));
        u.receive(&Packet::Enc(pkt));
        let nack = u.end_of_round().expect("unsatisfied");
        // Still needs 2 more shares of block 0 (only one distinct held).
        assert_eq!(nack.requests[0].count, 2);
    }

    #[test]
    fn rounds_accumulate_until_success() {
        let blocks = toy_message();
        let mut u = user(102);
        assert!(u.end_of_round().is_some()); // round 1: nothing
        assert!(u.end_of_round().is_some()); // round 2: nothing
        u.receive(&Packet::Enc(blocks.block(0).unwrap().packets[1].clone()));
        assert_eq!(u.end_of_round(), None);
        assert_eq!(u.rounds_to_success(), Some(3));
    }

    #[test]
    fn stale_message_packets_ignored_when_pinned() {
        let blocks = toy_message(); // msg_id 9
        let mut u = UserSession::new(102, 4, 3, layout()).expect_msg_id(8);
        // Packets from message 9 are dropped: the user stays hungry.
        for p in &blocks.block(0).unwrap().packets {
            u.receive(&Packet::Enc(p.clone()));
        }
        assert!(!u.is_satisfied());
        // And a matching-ID USR is accepted.
        u.receive(&Packet::Usr(UsrPacket {
            msg_id: 8,
            new_user_id: 102,
            sealed: vec![],
        }));
        assert!(u.is_satisfied());
    }

    #[test]
    fn moved_user_rederives_id_from_max_kid() {
        // Old ID 6, maxKID 8 (degree 4): Theorem 4.2 gives 25 (see the
        // ident tests). The packet serves 25.
        let pkt = EncPacket {
            msg_id: 1,
            block_id: 0,
            seq: 0,
            duplicate: false,
            max_kid: 8,
            frm_id: 20,
            to_id: 30,
            entries: vec![(
                25,
                SealedKey::seal(
                    &SymKey::from_bytes([1; 16]),
                    &SymKey::from_bytes([2; 16]),
                    0,
                ),
            )],
        };
        let mut u = UserSession::new(6, 4, 3, layout());
        u.receive(&Packet::Enc(pkt));
        assert_eq!(u.current_id(), Some(25));
        assert!(u.is_satisfied());
    }
}
