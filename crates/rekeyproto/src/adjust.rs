//! The `AdjustRho` algorithm (Figure 11) and `numNACK` heuristics.

/// Parameters of the adaptation.
#[derive(Debug, Clone, Copy)]
pub struct AdjustConfig {
    /// FEC block size `k`.
    pub k: usize,
    /// Target number of first-round NACKs (`numNACK`).
    pub num_nack: usize,
}

/// One step of `AdjustRho`: given the list `A` of per-user parity demands
/// from the *first* round of the current message, returns the proactivity
/// factor for the next message.
///
/// `rand01` supplies the uniform draw for the probabilistic decrease; the
/// caller owns the RNG so whole simulations stay deterministic.
pub fn adjust_rho(a: &[usize], rho: f64, cfg: AdjustConfig, rand01: impl FnOnce() -> f64) -> f64 {
    let k = cfg.k as f64;
    let n = a.len();
    if n > cfg.num_nack {
        // Too many NACKs: raise rho so that the (numNACK+1)-th most
        // demanding user would have been satisfied proactively.
        let mut sorted: Vec<usize> = a.to_vec();
        sorted.sort_unstable_by(|x, y| y.cmp(x));
        let a_target = sorted[cfg.num_nack] as f64;
        (a_target + (k * rho).ceil()) / k
    } else if n < cfg.num_nack {
        // Fewer NACKs than targeted: probabilistically shave one packet.
        let p = ((cfg.num_nack as f64 - 2.0 * n as f64) / cfg.num_nack as f64).max(0.0);
        if p > 0.0 && rand01() < p {
            ((k * rho - 1.0).ceil() / k).max(0.0)
        } else {
            rho
        }
    } else {
        rho
    }
}

/// The `numNACK` deadline heuristics: grow by one (up to `max_nack`) when
/// every user met the deadline; shrink by the number of users that missed.
pub fn update_num_nack(num_nack: usize, missed: usize, max_nack: usize) -> usize {
    if missed == 0 {
        (num_nack + 1).min(max_nack)
    } else {
        num_nack.saturating_sub(missed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: AdjustConfig = AdjustConfig { k: 10, num_nack: 2 };

    #[test]
    fn too_many_nacks_raises_rho_by_selected_demand() {
        // Paper's example: 10 users request a0 >= a1 >= ... >= a9,
        // numNACK = 2 -> next message sends a2 extra parities per block.
        let a = vec![9, 8, 5, 4, 4, 3, 2, 2, 1, 1];
        let rho = adjust_rho(&a, 1.0, CFG, || 0.5);
        // a_target = 5 (third largest), ceil(10 * 1.0) = 10 -> 15/10.
        assert!((rho - 1.5).abs() < 1e-12);
    }

    #[test]
    fn raise_is_insensitive_to_input_order() {
        let sorted = vec![9, 8, 5, 4, 3];
        let mut shuffled = sorted.clone();
        shuffled.swap(0, 4);
        shuffled.swap(1, 3);
        assert_eq!(
            adjust_rho(&sorted, 1.2, CFG, || 0.0),
            adjust_rho(&shuffled, 1.2, CFG, || 0.0)
        );
    }

    #[test]
    fn exact_target_leaves_rho_alone() {
        let a = vec![4, 2];
        assert_eq!(adjust_rho(&a, 1.7, CFG, || 0.0), 1.7);
    }

    #[test]
    fn under_target_decreases_with_probability() {
        // size(A) = 0, numNACK = 2 -> probability (2 - 0)/2 = 1.
        let rho = adjust_rho(&[], 1.5, CFG, || 0.999);
        // ceil(10 * 1.5 - 1)/10 = 14/10.
        assert!((rho - 1.4).abs() < 1e-12);
    }

    #[test]
    fn under_target_probability_formula() {
        // size(A) = 1, numNACK = 10 -> p = (10 - 2)/10 = 0.8.
        let cfg = AdjustConfig {
            k: 10,
            num_nack: 10,
        };
        // Draw below p: decrease.
        let dec = adjust_rho(&[1], 2.0, cfg, || 0.79);
        assert!((dec - 1.9).abs() < 1e-12);
        // Draw above p: unchanged.
        let keep = adjust_rho(&[1], 2.0, cfg, || 0.81);
        assert_eq!(keep, 2.0);
    }

    #[test]
    fn no_decrease_when_half_target_reached() {
        // size(A) * 2 >= numNACK -> probability clamps to 0.
        let cfg = AdjustConfig { k: 10, num_nack: 4 };
        assert_eq!(adjust_rho(&[1, 1], 1.5, cfg, || 0.0), 1.5);
        assert_eq!(adjust_rho(&[1, 1, 1], 1.5, cfg, || 0.0), 1.5);
    }

    #[test]
    fn rho_floors_at_zero() {
        let rho = adjust_rho(&[], 0.05, CFG, || 0.0);
        assert!(rho >= 0.0);
    }

    #[test]
    fn repeated_decreases_step_one_packet() {
        let mut rho = 2.0;
        for step in 0..10 {
            rho = adjust_rho(&[], rho, CFG, || 0.0);
            let expect = (20.0 - (step + 1) as f64) / 10.0;
            assert!((rho - expect).abs() < 1e-9, "step {step}: {rho}");
        }
    }

    #[test]
    fn num_nack_heuristics() {
        assert_eq!(update_num_nack(20, 0, 100), 21);
        assert_eq!(update_num_nack(100, 0, 100), 100); // capped
        assert_eq!(update_num_nack(20, 5, 100), 15);
        assert_eq!(update_num_nack(3, 10, 100), 0); // floored
    }
}
