//! The key-server side of the rekey transport protocol (Figures 2, 22, 26).

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use keytree::NodeId;
use rekeymsg::blocks::proactive_parity_count;
use rekeymsg::{BlockSet, EncPacket, Layout, NackPacket, Packet, SendOrder};

use crate::adjust::{adjust_rho, update_num_nack, AdjustConfig};

/// Server-side protocol parameters (defaults are the paper's).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// FEC block size `k`.
    pub block_size: usize,
    /// Initial proactivity factor `rho`.
    pub initial_rho: f64,
    /// Initial NACK target `numNACK`.
    pub initial_num_nack: usize,
    /// Upper bound `maxNACK` for the adaptive target.
    pub max_nack: usize,
    /// Multicast rounds before switching to unicast (`usize::MAX` disables
    /// unicast entirely — used by the multicast-only bandwidth experiments).
    pub max_multicast_rounds: usize,
    /// Whether `AdjustRho` runs between messages.
    pub adapt_rho: bool,
    /// Whether the `numNACK` deadline heuristics run between messages.
    pub adapt_num_nack: bool,
    /// Enable the optional early switch to unicast when the USR bytes for
    /// all nackers are no more than the next round's PARITY bytes. The
    /// paper offers this for large rekey intervals; experiments use plain
    /// round-count switching, so the default is off.
    pub early_unicast_by_bytes: bool,
    /// Order in which a round's packets are multicast.
    pub send_order: SendOrder,
    /// Wire layout.
    pub layout: Layout,
    /// UDP header bytes counted in the unicast switch rule.
    pub udp_header_len: usize,
    /// RNG seed for the probabilistic `rho` decrease.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            block_size: 10,
            initial_rho: 1.0,
            initial_num_nack: 20,
            max_nack: 100,
            max_multicast_rounds: 2,
            adapt_rho: true,
            adapt_num_nack: true,
            early_unicast_by_bytes: false,
            send_order: SendOrder::Interleaved,
            layout: Layout::DEFAULT,
            udp_header_len: 8,
            seed: 7,
        }
    }
}

/// Cross-message server state: `rho`, `numNACK`, adaptation RNG, and the
/// warmed prototype FEC encoder every message's blocks are cloned from.
#[derive(Debug)]
pub struct ServerController {
    cfg: ServerConfig,
    /// Current proactivity factor.
    pub rho: f64,
    /// Current NACK target.
    pub num_nack: usize,
    rng: SmallRng,
    /// Prototype encoder for `cfg.block_size`, warmed once: the O(k²)
    /// Lagrange setup and the proactive-round coefficient rows are built
    /// here and shared (by clone) with every block of every message this
    /// controller opens.
    proto_encoder: rse::BlockEncoder,
}

impl ServerController {
    /// Creates a controller with the configured initial state.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.block_size` is not a valid FEC block size.
    pub fn new(cfg: ServerConfig) -> Self {
        let Ok(mut proto_encoder) = rse::BlockEncoder::new(cfg.block_size) else {
            panic!("invalid block size {}", cfg.block_size)
        };
        // Pre-build the rows round one will need (plus a couple of
        // reactive rounds' worth); later rows still build lazily.
        let warm = (proactive_parity_count(cfg.initial_rho, cfg.block_size) + 2)
            .min(proto_encoder.max_parities());
        // Infallible: the count is clamped to the encoder's own limit.
        let _ = proto_encoder.warm(warm);
        ServerController {
            rho: cfg.initial_rho,
            num_nack: cfg.initial_num_nack,
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x5E55_1015),
            cfg,
            proto_encoder,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Opens a session for one rekey message. `usr_len_hint` is the
    /// typical USR packet length (3 + 20h) used by the early-unicast byte
    /// rule.
    pub fn begin_message(&self, enc_packets: Vec<EncPacket>, usr_len_hint: usize) -> ServerSession {
        ServerSession::new(
            enc_packets,
            self.proto_encoder.clone(),
            self.rho,
            self.cfg,
            usr_len_hint,
        )
    }

    /// [`ServerController::begin_message`] for a caller that already built
    /// the [`BlockSet`] — the streaming rekey pipeline assembles blocks
    /// incrementally (overlapped with FEC body serialization) and hands
    /// the finished set over here instead of re-partitioning packets.
    pub fn begin_message_with_blocks(
        &self,
        blocks: BlockSet,
        usr_len_hint: usize,
    ) -> ServerSession {
        ServerSession::with_blocks(blocks, self.rho, self.cfg, usr_len_hint)
    }

    /// The warmed prototype block encoder sessions clone per message. A
    /// streaming build clones this once and feeds the resulting
    /// [`BlockSet`] back through
    /// [`ServerController::begin_message_with_blocks`].
    pub fn proto_encoder(&self) -> &rse::BlockEncoder {
        &self.proto_encoder
    }

    /// Feeds the finished session's first-round demands into `AdjustRho`
    /// and its deadline misses into the `numNACK` heuristics.
    pub fn absorb_feedback(&mut self, session: &ServerSession, missed_deadline: usize) {
        if self.cfg.adapt_rho {
            let cfg = AdjustConfig {
                k: self.cfg.block_size,
                num_nack: self.num_nack,
            };
            let draw = self.rng.gen::<f64>();
            self.rho = adjust_rho(&session.first_round_demands, self.rho, cfg, || draw);
        }
        if self.cfg.adapt_num_nack {
            self.num_nack = update_num_nack(self.num_nack, missed_deadline, self.cfg.max_nack);
        }
    }
}

/// Phase of a message session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Multicast,
    Unicast,
    Done,
}

/// Counters exposed for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// ENC packets multicast (including last-block duplicates).
    pub enc_multicast: usize,
    /// PARITY packets multicast across all rounds.
    pub parity_multicast: usize,
    /// USR packets unicast (counting duplicates).
    pub usr_sent: usize,
    /// Bytes unicast (USR + UDP headers).
    pub usr_bytes: usize,
    /// Multicast rounds actually used.
    pub multicast_rounds: usize,
    /// NACK packets received in total.
    pub nacks_received: usize,
}

/// What the server does at a round boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundDecision {
    /// Multicast these packets (a reactive parity round).
    Multicast(Vec<Packet>),
    /// Unicast USR packets to these users.
    Unicast(UnicastSend),
    /// Every user has recovered; the message is complete.
    Done,
}

/// One unicast wave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnicastSend {
    /// Users (by u-node ID) to serve.
    pub targets: Vec<NodeId>,
    /// How many duplicate copies of each USR packet to send.
    pub duplicates: usize,
}

/// Per-message server state machine.
#[derive(Debug)]
pub struct ServerSession {
    cfg: ServerConfig,
    blocks: BlockSet,
    rho: f64,
    phase: Phase,
    round: usize,
    /// `amax[i]` for the current round.
    amax: Vec<usize>,
    /// Spare `amax`-sized buffer swapped in at each round boundary so the
    /// per-round reset reuses one allocation instead of minting a fresh
    /// vector per round.
    amax_scratch: Vec<usize>,
    /// Users that NACKed since the last round boundary.
    round_nackers: Vec<NodeId>,
    /// Per-user maximum parity demand from the FIRST round (list `A`).
    first_round_demands: Vec<usize>,
    usr_len_hint: usize,
    usr_duplicates: usize,
    /// Counters.
    pub stats: ServerStats,
}

impl ServerSession {
    fn new(
        enc_packets: Vec<EncPacket>,
        proto_encoder: rse::BlockEncoder,
        rho: f64,
        cfg: ServerConfig,
        usr_len_hint: usize,
    ) -> Self {
        let blocks = BlockSet::with_encoder(enc_packets, proto_encoder, cfg.layout);
        Self::with_blocks(blocks, rho, cfg, usr_len_hint)
    }

    fn with_blocks(blocks: BlockSet, rho: f64, cfg: ServerConfig, usr_len_hint: usize) -> Self {
        let amax = vec![0; blocks.block_count()];
        ServerSession {
            cfg,
            blocks,
            rho,
            phase: Phase::Multicast,
            round: 0,
            amax,
            amax_scratch: Vec::new(),
            round_nackers: Vec::new(),
            first_round_demands: Vec::new(),
            usr_len_hint,
            usr_duplicates: 2,
            stats: ServerStats::default(),
        }
    }

    /// The proactivity factor this session was opened with.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The block set (for tests and drivers that need packet contents).
    pub fn blocks(&self) -> &BlockSet {
        &self.blocks
    }

    /// Number of real (pre-duplication) ENC packets — the `h` of the
    /// bandwidth-overhead metric.
    pub fn real_enc_count(&self) -> usize {
        self.blocks.real_packet_count()
    }

    /// Multicast bandwidth overhead so far: `h' / h`.
    pub fn bandwidth_overhead(&self) -> f64 {
        let h = self.blocks.real_packet_count();
        if h == 0 {
            return 0.0;
        }
        (self.stats.enc_multicast + self.stats.parity_multicast) as f64 / h as f64
    }

    /// First-round per-user parity demands (the `A` list for `AdjustRho`).
    pub fn first_round_demands(&self) -> &[usize] {
        &self.first_round_demands
    }

    /// Number of NACKs received at the end of the first round.
    pub fn first_round_nack_count(&self) -> usize {
        self.first_round_demands.len()
    }

    /// Starts the message: the round-one schedule (all ENC packets plus
    /// proactive parities, interleaved across blocks). An empty message
    /// completes immediately.
    pub fn start(&mut self) -> Vec<Packet> {
        assert_eq!(self.round, 0, "start called twice");
        self.round = 1;
        if self.blocks.block_count() == 0 {
            self.phase = Phase::Done;
            return Vec::new();
        }
        let sched = self
            .blocks
            .round_one_schedule_ordered(self.rho, self.cfg.send_order)
            .unwrap_or_else(|e| panic!("parity space exhausted in round one: {e}"));
        self.count_multicast(&sched);
        sched
    }

    fn count_multicast(&mut self, packets: &[Packet]) {
        for p in packets {
            match p {
                Packet::Enc(_) => self.stats.enc_multicast += 1,
                Packet::Parity(_) => self.stats.parity_multicast += 1,
                _ => unreachable!("server multicasts only ENC/PARITY"),
            }
        }
    }

    /// Accepts a NACK from `user` (Figure 26, step 8).
    pub fn accept_nack(&mut self, user: NodeId, nack: &NackPacket) {
        self.stats.nacks_received += 1;
        match self.phase {
            Phase::Multicast => {
                self.round_nackers.push(user);
                let mut max_a = 0usize;
                for req in &nack.requests {
                    let a = req.count as usize;
                    max_a = max_a.max(a);
                    if let Some(slot) = self.amax.get_mut(req.block_id as usize) {
                        *slot = (*slot).max(a);
                    }
                }
                if self.round == 1 {
                    self.first_round_demands.push(max_a);
                }
            }
            Phase::Unicast => {
                // Served by the next unicast wave.
                self.round_nackers.push(user);
            }
            Phase::Done => {}
        }
    }

    /// Round boundary (the server's timeout): decides between a reactive
    /// multicast round, the switch to unicast, or completion.
    pub fn end_of_round(&mut self) -> RoundDecision {
        match self.phase {
            Phase::Done => RoundDecision::Done,
            Phase::Multicast => {
                self.stats.multicast_rounds = self.round;
                if self.round_nackers.is_empty() {
                    self.phase = Phase::Done;
                    return RoundDecision::Done;
                }
                let early = self.cfg.early_unicast_by_bytes && self.unicast_is_cheaper();
                if self.round >= self.cfg.max_multicast_rounds || early {
                    self.phase = Phase::Unicast;
                    return RoundDecision::Unicast(self.unicast_wave());
                }
                // Reactive multicast: amax[i] fresh parities per block.
                // Swap the demands out against the zeroed spare buffer so
                // the reset reuses its allocation round after round.
                self.amax_scratch.clear();
                self.amax_scratch.resize(self.blocks.block_count(), 0);
                std::mem::swap(&mut self.amax, &mut self.amax_scratch);
                self.round_nackers.clear();
                self.round += 1;
                match self
                    .blocks
                    .reactive_schedule_ordered(&self.amax_scratch, self.cfg.send_order)
                {
                    Ok(sched) => {
                        self.count_multicast(&sched);
                        RoundDecision::Multicast(sched)
                    }
                    Err(_) => {
                        // Parity space exhausted: fall back to unicast.
                        self.phase = Phase::Unicast;
                        RoundDecision::Unicast(self.unicast_wave())
                    }
                }
            }
            Phase::Unicast => {
                if self.round_nackers.is_empty() {
                    self.phase = Phase::Done;
                    RoundDecision::Done
                } else {
                    RoundDecision::Unicast(self.unicast_wave())
                }
            }
        }
    }

    fn unicast_wave(&mut self) -> UnicastSend {
        let mut targets = std::mem::take(&mut self.round_nackers);
        targets.sort_unstable();
        targets.dedup();
        let duplicates = self.usr_duplicates;
        self.usr_duplicates += 1;
        self.stats.usr_sent += targets.len() * duplicates;
        self.stats.usr_bytes +=
            targets.len() * duplicates * (self.usr_len_hint + self.cfg.udp_header_len);
        UnicastSend {
            targets,
            duplicates,
        }
    }

    /// The early-switch rule: unicast now if serving every nacker by USR
    /// costs no more bytes than the parities of another multicast round.
    fn unicast_is_cheaper(&self) -> bool {
        let mut distinct: BTreeMap<NodeId, ()> = BTreeMap::new();
        for &u in &self.round_nackers {
            distinct.insert(u, ());
        }
        let usr_bytes = distinct.len() * (self.usr_len_hint + self.cfg.udp_header_len);
        let parity_packets: usize = self.amax.iter().sum();
        let parity_bytes =
            parity_packets * (self.cfg.layout.enc_packet_len + self.cfg.udp_header_len);
        usr_bytes <= parity_bytes && !distinct.is_empty()
    }

    /// Proactive parities per block at this session's `rho`.
    pub fn proactive_per_block(&self) -> usize {
        proactive_parity_count(self.rho, self.cfg.block_size)
    }

    /// True once the message is fully delivered.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// True while in the unicast phase.
    pub fn is_unicasting(&self) -> bool {
        self.phase == Phase::Unicast
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekeymsg::NackRequest;
    use wirecrypto::{SealedKey, SymKey};

    fn enc(i: u16) -> EncPacket {
        let kek = SymKey::from_bytes([i as u8; 16]);
        EncPacket {
            msg_id: 0,
            block_id: 0,
            seq: 0,
            duplicate: false,
            max_kid: 50,
            frm_id: 100 + i,
            to_id: 100 + i,
            entries: vec![(
                100 + i,
                SealedKey::seal(&kek, &SymKey::from_bytes([9; 16]), 0),
            )],
        }
    }

    fn cfg() -> ServerConfig {
        ServerConfig {
            block_size: 5,
            initial_rho: 1.4,
            max_multicast_rounds: 2,
            ..ServerConfig::default()
        }
    }

    fn session(n_pkts: usize) -> ServerSession {
        let ctl = ServerController::new(cfg());
        ctl.begin_message((0..n_pkts as u16).map(enc).collect(), 100)
    }

    fn nack(reqs: &[(u8, u8)]) -> NackPacket {
        NackPacket {
            msg_id: 0,
            requests: reqs
                .iter()
                .map(|&(count, block_id)| NackRequest { count, block_id })
                .collect(),
        }
    }

    #[test]
    fn round_one_counts_match_rho() {
        let mut s = session(10); // 2 blocks of 5
        let sched = s.start();
        // ceil((1.4 - 1) * 5) = 2 parities per block.
        assert_eq!(s.proactive_per_block(), 2);
        assert_eq!(sched.len(), 10 + 2 * 2);
        assert_eq!(s.stats.enc_multicast, 10);
        assert_eq!(s.stats.parity_multicast, 4);
    }

    #[test]
    fn no_nacks_completes_after_round_one() {
        let mut s = session(10);
        s.start();
        assert_eq!(s.end_of_round(), RoundDecision::Done);
        assert!(s.is_done());
        assert_eq!(s.stats.multicast_rounds, 1);
    }

    #[test]
    fn empty_message_is_immediately_done() {
        let mut s = session(0);
        assert!(s.start().is_empty());
        assert!(s.is_done());
        assert_eq!(s.bandwidth_overhead(), 0.0);
    }

    #[test]
    fn reactive_round_sends_amax_per_block() {
        let mut s = session(10);
        s.start();
        s.accept_nack(101, &nack(&[(2, 0)]));
        s.accept_nack(105, &nack(&[(1, 0), (3, 1)]));
        match s.end_of_round() {
            RoundDecision::Multicast(pkts) => {
                // amax = [2, 3] -> 5 parity packets.
                assert_eq!(pkts.len(), 5);
                assert!(pkts.iter().all(|p| matches!(p, Packet::Parity(_))));
            }
            other => panic!("expected reactive round, got {other:?}"),
        }
        // First-round demands recorded per user (max over its requests).
        assert_eq!(s.first_round_demands(), &[2, 3]);
    }

    #[test]
    fn switches_to_unicast_after_max_rounds() {
        let mut s = session(10);
        s.start();
        s.accept_nack(101, &nack(&[(5, 0)]));
        assert!(matches!(s.end_of_round(), RoundDecision::Multicast(_)));
        s.accept_nack(101, &nack(&[(2, 0)]));
        match s.end_of_round() {
            RoundDecision::Unicast(w) => {
                assert_eq!(w.targets, vec![101]);
                assert_eq!(w.duplicates, 2);
            }
            other => panic!("expected unicast, got {other:?}"),
        }
        assert!(s.is_unicasting());
    }

    #[test]
    fn early_unicast_when_bytes_favour_it() {
        // One nacker wanting many parities: USR (~108 B) < parities (5 *
        // 1035 B) -> switch at the end of round one.
        let ctl = ServerController::new(ServerConfig {
            early_unicast_by_bytes: true,
            ..cfg()
        });
        let mut s = ctl.begin_message((0..10u16).map(enc).collect(), 100);
        s.start();
        s.accept_nack(101, &nack(&[(5, 0)]));
        match s.end_of_round() {
            RoundDecision::Unicast(w) => assert_eq!(w.targets, vec![101]),
            other => panic!("expected early unicast, got {other:?}"),
        }
    }

    #[test]
    fn early_unicast_not_taken_when_parities_cheaper() {
        // Large USR hint makes unicast look expensive: stay multicast.
        let ctl = ServerController::new(ServerConfig {
            early_unicast_by_bytes: true,
            ..cfg()
        });
        let mut s = ctl.begin_message((0..10u16).map(enc).collect(), 10_000);
        s.start();
        s.accept_nack(101, &nack(&[(1, 0)]));
        assert!(matches!(s.end_of_round(), RoundDecision::Multicast(_)));
    }

    #[test]
    fn unicast_duplicates_escalate() {
        let ctl = ServerController::new(ServerConfig {
            max_multicast_rounds: 1,
            ..cfg()
        });
        let mut s = ctl.begin_message((0..10u16).map(enc).collect(), 100);
        s.start();
        s.accept_nack(101, &nack(&[(5, 0)]));
        s.accept_nack(102, &nack(&[(5, 0)]));
        let RoundDecision::Unicast(w1) = s.end_of_round() else {
            panic!("expected unicast");
        };
        assert_eq!(w1.duplicates, 2);
        assert_eq!(w1.targets.len(), 2);
        // One user still missing.
        s.accept_nack(102, &nack(&[(5, 0)]));
        let RoundDecision::Unicast(w2) = s.end_of_round() else {
            panic!("expected second unicast wave");
        };
        assert_eq!(w2.duplicates, 3);
        assert_eq!(w2.targets, vec![102]);
        // All served.
        assert_eq!(s.end_of_round(), RoundDecision::Done);
        assert_eq!(s.stats.usr_sent, 2 * 2 + 3);
    }

    #[test]
    fn bandwidth_overhead_counts_all_multicast() {
        let mut s = session(7); // 2 blocks (5 + 2dup+3... real 7, dup 3)
        s.start();
        // h = 7; h' = 10 ENC slots + 4 parities = 14.
        assert!((s.bandwidth_overhead() - 14.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn controller_adapts_rho_from_feedback() {
        let mut ctl = ServerController::new(ServerConfig {
            block_size: 10,
            initial_rho: 1.0,
            initial_num_nack: 2,
            ..ServerConfig::default()
        });
        let mut s = ctl.begin_message((0..10u16).map(enc).collect(), 100);
        s.start();
        for (u, a) in [(101u32, 9u8), (102, 8), (103, 5), (104, 4)] {
            s.accept_nack(u, &nack(&[(a, 0)]));
        }
        let _ = s.end_of_round();
        ctl.absorb_feedback(&s, 0);
        // a sorted desc = [9,8,5,4]; a[numNACK=2] = 5 -> rho = (5+10)/10.
        assert!((ctl.rho - 1.5).abs() < 1e-9, "rho = {}", ctl.rho);
        // numNACK grew by one (no deadline misses).
        assert_eq!(ctl.num_nack, 3);
    }

    #[test]
    fn controller_num_nack_shrinks_on_misses() {
        let mut ctl = ServerController::new(ServerConfig {
            initial_num_nack: 20,
            adapt_rho: false,
            ..ServerConfig::default()
        });
        let mut s = ctl.begin_message(vec![], 100);
        s.start();
        ctl.absorb_feedback(&s, 7);
        assert_eq!(ctl.num_nack, 13);
    }
}
