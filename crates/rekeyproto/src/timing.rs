//! Round-duration adaptation (Section 7.1).
//!
//! The duration of a multicast round is not fixed: the server sizes it so
//! that all users are *expected* to meet the rekey-interval deadline. If
//! some users missed the deadline in the previous message, the round
//! shrinks by the missing time; otherwise it grows back by a small
//! increment (trading fewer spurious NACKs against deadline slack).

/// Adaptive round-duration controller.
#[derive(Debug, Clone, Copy)]
pub struct RoundTimer {
    duration_ms: f64,
    min_ms: f64,
    max_ms: f64,
    grow_ms: f64,
}

impl RoundTimer {
    /// Creates a timer.
    ///
    /// * `initial_ms` — starting round duration (>= `min_ms`); typically
    ///   `max RTT` plus the transmission time of one round's packets.
    /// * `min_ms` — floor; a round can never undercut the largest RTT or
    ///   users' NACKs would arrive after the timeout.
    /// * `max_ms` — ceiling (e.g. rekey interval / expected rounds).
    /// * `grow_ms` — the "small value" added after an all-met message.
    pub fn new(initial_ms: f64, min_ms: f64, max_ms: f64, grow_ms: f64) -> Self {
        assert!(min_ms > 0.0 && min_ms <= max_ms);
        assert!(grow_ms >= 0.0);
        RoundTimer {
            duration_ms: initial_ms.clamp(min_ms, max_ms),
            min_ms,
            max_ms,
            grow_ms,
        }
    }

    /// Current round duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.duration_ms
    }

    /// Feedback after a rekey message: `missing_ms` is how far past the
    /// deadline the last user finished (zero when everyone met it).
    pub fn feedback(&mut self, missing_ms: f64) {
        if missing_ms > 0.0 {
            self.duration_ms = (self.duration_ms - missing_ms).max(self.min_ms);
        } else {
            self.duration_ms = (self.duration_ms + self.grow_ms).min(self.max_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_shrink_duration_by_missing_time() {
        let mut t = RoundTimer::new(1000.0, 200.0, 2000.0, 50.0);
        t.feedback(300.0);
        assert_eq!(t.duration_ms(), 700.0);
    }

    #[test]
    fn all_met_grows_slowly() {
        let mut t = RoundTimer::new(1000.0, 200.0, 2000.0, 50.0);
        t.feedback(0.0);
        assert_eq!(t.duration_ms(), 1050.0);
    }

    #[test]
    fn floor_and_ceiling_respected() {
        let mut t = RoundTimer::new(250.0, 200.0, 400.0, 100.0);
        t.feedback(5000.0);
        assert_eq!(t.duration_ms(), 200.0, "never below min (RTT)");
        for _ in 0..10 {
            t.feedback(0.0);
        }
        assert_eq!(t.duration_ms(), 400.0, "capped at max");
    }

    #[test]
    fn initial_clamped() {
        let t = RoundTimer::new(10_000.0, 100.0, 500.0, 10.0);
        assert_eq!(t.duration_ms(), 500.0);
        let t2 = RoundTimer::new(1.0, 100.0, 500.0, 10.0);
        assert_eq!(t2.duration_ms(), 100.0);
    }

    #[test]
    fn oscillation_converges_to_band() {
        // Alternating small misses and successes settles into a band
        // rather than diverging.
        let mut t = RoundTimer::new(1000.0, 200.0, 2000.0, 25.0);
        for i in 0..100 {
            if i % 3 == 0 {
                t.feedback(40.0);
            } else {
                t.feedback(0.0);
            }
        }
        let d = t.duration_ms();
        assert!((200.0..=2000.0).contains(&d));
    }

    #[test]
    #[should_panic]
    fn invalid_bounds_rejected() {
        let _ = RoundTimer::new(1.0, 500.0, 100.0, 1.0);
    }
}
