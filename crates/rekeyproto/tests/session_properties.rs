//! Property-based tests of the server session state machine under random
//! NACK streams: parity sequence monotonicity, stats consistency, phase
//! transitions, and termination.

use proptest::prelude::*;
use rekeymsg::{EncPacket, NackPacket, NackRequest, Packet};
use rekeyproto::{RoundDecision, ServerConfig, ServerController};
use wirecrypto::{SealedKey, SymKey};

fn enc(i: u16) -> EncPacket {
    let kek = SymKey::from_bytes([i as u8; 16]);
    EncPacket {
        msg_id: 1,
        block_id: 0,
        seq: 0,
        duplicate: false,
        max_kid: 40,
        frm_id: 100 + i,
        to_id: 100 + i,
        entries: vec![(
            100 + i,
            SealedKey::seal(&kek, &SymKey::from_bytes([1; 16]), 0),
        )],
    }
}

/// One round of NACKs: (user node id offset, per-block demand) per user.
type NackRound = Vec<(u8, Vec<(u8, u8)>)>;

fn nack_rounds() -> impl Strategy<Value = Vec<NackRound>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0u8..30, proptest::collection::vec((1u8..6, 0u8..4), 1..4)),
            0..12,
        ),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn session_invariants_hold(
        n_packets in 1usize..30,
        k in 1usize..12,
        rho in 1.0f64..2.5,
        max_rounds in 1usize..5,
        rounds in nack_rounds(),
    ) {
        let cfg = ServerConfig {
            block_size: k,
            initial_rho: rho,
            adapt_rho: false,
            max_multicast_rounds: max_rounds,
            ..ServerConfig::default()
        };
        let controller = ServerController::new(cfg);
        let packets: Vec<EncPacket> = (0..n_packets as u16).map(enc).collect();
        let mut session = controller.begin_message(packets, 120);

        let schedule = session.start();
        let n_blocks = n_packets.div_ceil(k);
        // Round one: every data slot plus the proactive parities.
        let proactive = session.proactive_per_block();
        prop_assert_eq!(schedule.len(), n_blocks * (k + proactive));
        prop_assert_eq!(session.stats.enc_multicast, n_blocks * k);
        prop_assert_eq!(session.stats.parity_multicast, n_blocks * proactive);

        // Parity sequence numbers must be globally fresh per block.
        let mut max_parity_seq: Vec<Option<u8>> = vec![None; n_blocks];
        let check_parities = |pkts: &[Packet], seqs: &mut Vec<Option<u8>>| {
            for p in pkts {
                if let Packet::Parity(par) = p {
                    let b = par.block_id as usize;
                    if let Some(prev) = seqs[b] {
                        assert!(par.seq > prev, "parity seq reused in block {b}");
                    }
                    seqs[b] = Some(par.seq);
                }
            }
        };
        check_parities(&schedule, &mut max_parity_seq);

        let mut done = false;
        let mut saw_unicast = false;
        for round in &rounds {
            if done {
                break;
            }
            for (user, reqs) in round {
                let nack = NackPacket {
                    msg_id: 1,
                    requests: reqs
                        .iter()
                        .map(|&(count, rel)| NackRequest {
                            count,
                            block_id: rel % n_blocks.max(1) as u8,
                        })
                        .collect(),
                };
                session.accept_nack(200 + *user as u32, &nack);
            }
            match session.end_of_round() {
                RoundDecision::Done => done = true,
                RoundDecision::Multicast(pkts) => {
                    prop_assert!(!saw_unicast, "multicast after unicast");
                    prop_assert!(
                        pkts.iter().all(|p| matches!(p, Packet::Parity(_))),
                        "reactive rounds send only parity"
                    );
                    check_parities(&pkts, &mut max_parity_seq);
                }
                RoundDecision::Unicast(wave) => {
                    saw_unicast = true;
                    prop_assert!(wave.duplicates >= 2);
                    // Targets deduplicated and sorted.
                    prop_assert!(wave.targets.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }

        // Stats consistency: bandwidth overhead >= 1 whenever something
        // was multicast, and parities counted match mints.
        if session.real_enc_count() > 0 {
            prop_assert!(session.bandwidth_overhead() >= 1.0);
        }
        // No-NACK boundary always completes the message.
        loop {
            match session.end_of_round() {
                RoundDecision::Done => break,
                RoundDecision::Unicast(_) => continue,
                RoundDecision::Multicast(_) => continue,
            }
        }
        prop_assert!(session.is_done());
    }

    /// First-round demands record the per-user maximum, irrespective of
    /// how requests are split across blocks.
    #[test]
    fn first_round_demands_are_per_user_maxima(
        demands in proptest::collection::vec(
            proptest::collection::vec((1u8..9, 0u8..3), 1..5),
            1..10,
        ),
    ) {
        let cfg = ServerConfig {
            block_size: 5,
            adapt_rho: false,
            ..ServerConfig::default()
        };
        let controller = ServerController::new(cfg);
        let mut session = controller.begin_message((0..15u16).map(enc).collect(), 120);
        session.start();
        let mut expect = Vec::new();
        for (u, reqs) in demands.iter().enumerate() {
            let nack = NackPacket {
                msg_id: 1,
                requests: reqs
                    .iter()
                    .map(|&(count, block_id)| NackRequest { count, block_id })
                    .collect(),
            };
            session.accept_nack(u as u32, &nack);
            expect.push(reqs.iter().map(|&(c, _)| c as usize).max().unwrap());
        }
        prop_assert_eq!(session.first_round_demands(), &expect[..]);
        prop_assert_eq!(session.first_round_nack_count(), demands.len());
    }
}
