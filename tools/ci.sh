#!/usr/bin/env bash
# The full local gate: formatting, lints, the xcheck static-analysis pass,
# and the test suite with the deep invariant sanitizer live. Everything
# runs offline against the vendored in-tree dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xcheck"
cargo run -p xcheck

echo "==> cargo test --workspace --features sanitize"
cargo test --workspace -q --features sanitize

echo "==> bench smoke run (BENCH_rekey.json)"
cargo run --release -p bench --bin bench_rekey -- --smoke --out BENCH_rekey.json
if [ ! -s BENCH_rekey.json ]; then
    echo "ci.sh: BENCH_rekey.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_rekey -- --check BENCH_rekey.json

echo "==> figure engine smoke run (BENCH_figures.json)"
cargo run --release -p bench --bin bench_figures -- --smoke --out BENCH_figures.json
if [ ! -s BENCH_figures.json ]; then
    echo "ci.sh: BENCH_figures.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_figures -- --check BENCH_figures.json

echo "==> ci.sh: all gates passed"
