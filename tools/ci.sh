#!/usr/bin/env bash
# The full local gate: formatting, lints, the xcheck static-analysis pass
# (with its machine-readable report), the test suite with the deep
# invariant sanitizer live, the dynamic no-alloc and schedule-perturbation
# harnesses, and the bench/obs smoke runs. Everything runs offline against
# the vendored in-tree dependency shims. Each stage's wall time is
# reported in a summary at the end.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGE_NAMES=()
STAGE_SECONDS=()
CURRENT_STAGE=""
CURRENT_START=0

stage() {
    stage_end
    CURRENT_STAGE="$1"
    CURRENT_START=$SECONDS
    echo "==> $1"
}

stage_end() {
    if [ -n "$CURRENT_STAGE" ]; then
        STAGE_NAMES+=("$CURRENT_STAGE")
        STAGE_SECONDS+=("$((SECONDS - CURRENT_START))")
        CURRENT_STAGE=""
    fi
}

stage "cargo fmt --check"
cargo fmt --check

stage "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

stage "xcheck static analysis (--json target/xcheck.json)"
mkdir -p target
cargo run -q -p xcheck -- --json target/xcheck.json
python3 - <<'EOF'
import json
with open("target/xcheck.json") as f:
    report = json.load(f)
assert report["schema"] == "xcheck/v1", report["schema"]
assert report["pass"] is True
assert report["violations_total"] == 0
# Every suppression that reaches the report carries a non-empty reason
# (suppression-hygiene flags the rest, which would have failed the run).
for sup in report["suppressions"]:
    assert sup["reason"].strip(), f"reasonless suppression: {sup}"
# The atomics inventory and the no_alloc mark list back the dynamic gates.
assert report["atomics"], "atomics inventory must not be empty"
assert report["no_alloc_marks"], "no_alloc marks must be inventoried"
EOF

stage "cargo test --workspace --features sanitize"
cargo test --workspace -q --features sanitize

stage "dynamic no-alloc harness (xcheck-rt counting allocator)"
cargo test -q -p xcheck-rt
cargo test -q -p keytree --test no_alloc_marks
cargo test -q -p rekeymsg --test no_alloc_marks
cargo test -q -p rse --test no_alloc_marks
cargo test -q -p netsim --test no_alloc_marks
cargo test -q -p grouprekey --test no_alloc_marks
cargo test -q -p taskpool --test no_alloc_marks
cargo test -q -p obs --test no_alloc_off
cargo test -q -p obs --features enabled --test no_alloc_off
cargo test -q -p obs --test no_alloc_marks
cargo test -q -p obs --features enabled --test no_alloc_marks

stage "schedule-perturbation bit-identity gates"
cargo test -q -p taskpool
cargo test -q -p grouprekey --test sched_perturb
cargo test -q -p bench --test sched_perturb

stage "UKA plan identity (run-aggregated planner vs user-by-user oracle)"
# Proptest bit-identity of the O(E) run-aggregated planner against the
# sanitize-featured reference walk, across random (N, d, churn, layout
# capacity, compaction) including relocation batches and forced splits.
cargo test -q -p rekeymsg --features sanitize --test plan_identity

stage "streaming pipeline gates (identity + sanitize smoke)"
# Byte-identity of the streamed datapath against the barrier build with
# the deep sanitizer live: workers {1,2,4} x 8 adversarial schedules x
# pipeline on/off, plus the proptest sweep over random tunings.
cargo test -q -p grouprekey --features sanitize --test pipeline_identity
# The bench binary's own streamed-vs-barrier comparison exits non-zero
# if any sealed byte differs (smoke cell, one rep).
cargo run -q --release -p bench --bin bench_scale -- --smoke --pipeline-only

stage "committed BENCH_*.json parse as JSON"
python3 - <<'EOF'
import glob
import json
files = sorted(glob.glob("BENCH_*.json"))
assert files, "no committed BENCH_*.json found"
for path in files:
    with open(path) as f:
        doc = json.load(f)
    assert isinstance(doc, dict) and doc, f"{path}: not a JSON object"
    print(f"    {path}: valid JSON ({len(doc)} top-level keys)")
EOF

# Smoke runs write under target/ so they never clobber the committed
# full-mode baselines; the committed JSONs are validated read-only.

stage "bench smoke run (target/BENCH_rekey.smoke.json)"
cargo run --release -p bench --bin bench_rekey -- --smoke --out target/BENCH_rekey.smoke.json
if [ ! -s target/BENCH_rekey.smoke.json ]; then
    echo "ci.sh: target/BENCH_rekey.smoke.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_rekey -- --check target/BENCH_rekey.smoke.json
cargo run --release -p bench --bin bench_rekey -- --check BENCH_rekey.json
if ! grep -q '"mode": "full"' BENCH_rekey.json; then
    echo "ci.sh: committed BENCH_rekey.json is not a full-mode run" >&2
    exit 1
fi

stage "figure engine smoke run (target/BENCH_figures.smoke.json)"
cargo run --release -p bench --bin bench_figures -- --smoke --out target/BENCH_figures.smoke.json
if [ ! -s target/BENCH_figures.smoke.json ]; then
    echo "ci.sh: target/BENCH_figures.smoke.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_figures -- --check target/BENCH_figures.smoke.json
cargo run --release -p bench --bin bench_figures -- --check BENCH_figures.json
if ! grep -q '"mode": "full"' BENCH_figures.json; then
    echo "ci.sh: committed BENCH_figures.json is not a full-mode run" >&2
    exit 1
fi

stage "scale bench smoke run (target/BENCH_scale.smoke.json)"
cargo run --release -p bench --bin bench_scale -- --smoke --out target/BENCH_scale.smoke.json
if [ ! -s target/BENCH_scale.smoke.json ]; then
    echo "ci.sh: target/BENCH_scale.smoke.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_scale -- --check target/BENCH_scale.smoke.json
cargo run --release -p bench --bin bench_scale -- --check BENCH_scale.json
if ! grep -q '"mode": "full"' BENCH_scale.json; then
    echo "ci.sh: committed BENCH_scale.json is not a full-mode run" >&2
    exit 1
fi

stage "churn bench smoke run (target/BENCH_churn.smoke.json)"
# The sanitize feature routes every scenario batch through the deep
# secrecy/delivery oracles and the Theorem 4.2 / explicit-relocation
# re-derivations, so the smoke sweep is also an end-to-end compaction
# correctness gate.
cargo run --release -p bench --features sanitize --bin bench_churn -- \
    --smoke --out target/BENCH_churn.smoke.json
if [ ! -s target/BENCH_churn.smoke.json ]; then
    echo "ci.sh: target/BENCH_churn.smoke.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_churn -- --check target/BENCH_churn.smoke.json
cargo run --release -p bench --bin bench_churn -- --check BENCH_churn.json
if ! grep -q '"mode": "full"' BENCH_churn.json; then
    echo "ci.sh: committed BENCH_churn.json is not a full-mode run" >&2
    exit 1
fi

stage "bench regression sentinel (bench_diff vs committed baselines)"
# Fresh smoke runs (written under target/ by the stages above) against
# the committed full-mode baselines. Rows match by identity coordinates,
# so the smoke/full grids compare exactly where they intersect: timing
# keys within the tolerance band, deterministic keys (digests, byte
# totals, counts) exactly. bench_rekey keeps the same grid in both
# modes, so that diff is a real end-to-end sentinel.
for name in rekey scale churn; do
    cargo run -q --release -p bench --bin bench_diff -- \
        --baseline "BENCH_${name}.json" --candidate "target/BENCH_${name}.smoke.json" \
        --out "target/bench_diff_${name}.json" --check
done
python3 - <<'EOF'
import json
for name in ("rekey", "scale", "churn"):
    with open(f"target/bench_diff_{name}.json") as f:
        verdict = json.load(f)
    assert verdict["schema"] == "bench_diff/v1", verdict["schema"]
    assert verdict["verdict"] == "pass", verdict
    assert verdict["compared"] >= 1, verdict
    print(f"    {name}: {verdict['compared']} compared, {verdict['matched']} matched, "
          f"{verdict['only_baseline']}/{verdict['only_candidate']} unmatched")
# The rekey grid is identical in smoke and full mode: the whole report
# must intersect, or the coordinate matching has regressed.
with open("target/bench_diff_rekey.json") as f:
    assert json.load(f)["compared"] >= 10, "rekey diff barely intersected"
EOF

stage "obs gate: build + test with --features obs"
cargo build -q --workspace --features obs
cargo test -q --workspace --features obs

stage "obs gate: bench_scale --smoke --obs-out target/obs.smoke.json"
cargo run -q --release -p bench --features bench/obs --bin bench_scale -- \
    --smoke --out target/BENCH_scale.obs-smoke.json --obs-out target/obs.smoke.json
if [ ! -s target/obs.smoke.json ]; then
    echo "ci.sh: target/obs.smoke.json missing or empty" >&2
    exit 1
fi
for key in '"schema": "obs_scale/v1"' '"schema": "obs/v1"' '"coverage_pct"' \
    'stage.mark' 'stage.mint' 'stage.seal' 'keytree.mark_batch' 'uka.build' \
    '"pipeline_obs"' 'pipeline.overlap_pct'; do
    if ! grep -q "$key" target/obs.smoke.json; then
        echo "ci.sh: obs snapshot is missing $key" >&2
        exit 1
    fi
done
# Balanced-brace structural parse, same check the --check flags apply.
python3 - <<'EOF'
import json
with open("target/obs.smoke.json") as f:
    snap = json.load(f)
assert snap["schema"] == "obs_scale/v1", snap["schema"]
assert snap["obs"]["enabled"] is True
names = {s["name"] for s in snap["obs"]["spans"]}
for expected in ("stage.mark", "stage.mint", "stage.seal", "keytree.mark_batch", "uka.build"):
    assert expected in names, f"missing span {expected}: {sorted(names)}"
# The streamed-pipeline run captures its own snapshot: every pipeline.*
# instrument must land in the section matching its metric kind.
pipe = snap["pipeline_obs"]
assert pipe["schema"] == "obs/v1", pipe["schema"]
sections = {
    "gauges": {"pipeline.overlap_pct", "pipeline.workers"},
    "counters": {"pipeline.chunks"},
    "values": {"pipeline.queue_depth", "pipeline.busy_ns", "pipeline.wall_ns"},
    "spans": {"stage.mint", "stage.seal"},
}
for section, expected in sections.items():
    got = {m["name"] for m in pipe[section]}
    missing = expected - got
    assert not missing, f"pipeline_obs {section} missing {sorted(missing)}: {sorted(got)}"
EOF

stage "obs gate: flight-recorder trace export + per-interval time-series"
# A traced pipeline comparison (one track per worker) and a traced +
# series-recorded churn replay; both Chrome trace exports are validated
# structurally (balanced B/E nesting, monotone per-track timestamps)
# and the obs_series/v1 column shapes are checked.
cargo run -q --release -p bench --features bench/obs --bin bench_scale -- \
    --smoke --pipeline-only --trace-out target/trace_scale.smoke.json
cargo run -q --release -p bench --features bench/obs --bin bench_churn -- \
    --smoke --out target/BENCH_churn.obs-smoke.json \
    --series-out target/obs_series_churn.smoke.json \
    --trace-out target/trace_churn.smoke.json
python3 - <<'EOF'
import json

def validate_trace(path, min_pipe_workers=0):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    assert isinstance(events, list) and events, f"{path}: no events"
    labels = {}
    tracks = {}
    for e in events:
        assert e["pid"] == 1, e
        if e["ph"] == "M":
            labels[e["tid"]] = e["args"]["name"]
            continue
        assert e["ph"] in ("B", "E", "i"), e
        tracks.setdefault(e["tid"], []).append(e)
    assert set(tracks) <= set(labels), f"{path}: unlabeled tracks"
    for tid, es in tracks.items():
        last, depth = -1.0, 0
        for e in es:
            assert e["ts"] >= last, f"{path}: ts not monotone on track {tid}"
            last = e["ts"]
            if e["ph"] == "B":
                depth += 1
            elif e["ph"] == "E":
                depth -= 1
                assert depth >= 0, f"{path}: E without B on track {tid}"
        assert depth == 0, f"{path}: {depth} unclosed spans on track {tid}"
    workers = [l for l in labels.values()
               if l.startswith("pipe-") and not l.startswith("pipe-consume")]
    assert len(workers) >= min_pipe_workers, f"{path}: worker tracks {sorted(labels.values())}"
    if min_pipe_workers:
        assert "pipe-consume-0" in labels.values(), \
            f"{path}: no consumer track in {sorted(labels.values())}"
    print(f"    {path}: {len(events)} events, tracks {sorted(labels.values())}")

# The pipeline comparison must show the consumer track plus at least one
# per-worker seal track. Only >= 1: the smoke cell mints ~2 seal chunks,
# and on one core which workers win chunk pickup is scheduling luck — a
# single worker often drains the whole channel while the rest claim no
# ring (they record no events).
validate_trace("target/trace_scale.smoke.json", min_pipe_workers=1)
validate_trace("target/trace_churn.smoke.json")

with open("target/obs_series_churn.smoke.json") as f:
    series = json.load(f)
assert series["schema"] == "obs_series/v1", series["schema"]
points = series["points"]
assert points > 0 and len(series["intervals"]) == points
names = {s["name"] for s in series["series"]}
for required in ("users", "joins", "leaves", "enc_per_member", "bytes_on_wire",
                 "max_depth", "mean_depth", "resident_bytes"):
    assert required in names, f"missing series {required}: {sorted(names)}"
for s in series["series"]:
    assert len(s["values"]) == points, s["name"]
print(f"    obs_series: {points} intervals x {len(names)} series")
EOF

stage "obs overhead bench (BENCH_obs smoke cycle + committed gates)"
# Smoke cycle: generate, self-gate, re-check. The committed full-mode
# report must hold the acceptance gates (recorder overhead <= 5% of
# wall, event-derived overlap within 1% of the stopwatch accounting,
# zero off-path allocations).
cargo run -q --release -p bench --features bench/obs --bin bench_obs -- \
    --smoke --out target/BENCH_obs.smoke.json
cargo run -q --release -p bench --features bench/obs --bin bench_obs -- \
    --check target/BENCH_obs.smoke.json
cargo run -q --release -p bench --features bench/obs --bin bench_obs -- \
    --check BENCH_obs.json
if ! grep -q '"mode": "full"' BENCH_obs.json; then
    echo "ci.sh: committed BENCH_obs.json is not a full-mode run" >&2
    exit 1
fi

stage_end
echo ""
echo "==> ci.sh: all gates passed"
echo "    stage wall times:"
for i in "${!STAGE_NAMES[@]}"; do
    printf '    %4ss  %s\n' "${STAGE_SECONDS[$i]}" "${STAGE_NAMES[$i]}"
done
