#!/usr/bin/env bash
# The full local gate: formatting, lints, the xcheck static-analysis pass,
# and the test suite with the deep invariant sanitizer live. Everything
# runs offline against the vendored in-tree dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xcheck"
cargo run -p xcheck

echo "==> cargo test --workspace --features sanitize"
cargo test --workspace -q --features sanitize

# Smoke runs write under target/ so they never clobber the committed
# full-mode baselines; the committed JSONs are validated read-only.
mkdir -p target

echo "==> bench smoke run (target/BENCH_rekey.smoke.json)"
cargo run --release -p bench --bin bench_rekey -- --smoke --out target/BENCH_rekey.smoke.json
if [ ! -s target/BENCH_rekey.smoke.json ]; then
    echo "ci.sh: target/BENCH_rekey.smoke.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_rekey -- --check target/BENCH_rekey.smoke.json
cargo run --release -p bench --bin bench_rekey -- --check BENCH_rekey.json
if ! grep -q '"mode": "full"' BENCH_rekey.json; then
    echo "ci.sh: committed BENCH_rekey.json is not a full-mode run" >&2
    exit 1
fi

echo "==> figure engine smoke run (target/BENCH_figures.smoke.json)"
cargo run --release -p bench --bin bench_figures -- --smoke --out target/BENCH_figures.smoke.json
if [ ! -s target/BENCH_figures.smoke.json ]; then
    echo "ci.sh: target/BENCH_figures.smoke.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_figures -- --check target/BENCH_figures.smoke.json
cargo run --release -p bench --bin bench_figures -- --check BENCH_figures.json
if ! grep -q '"mode": "full"' BENCH_figures.json; then
    echo "ci.sh: committed BENCH_figures.json is not a full-mode run" >&2
    exit 1
fi

echo "==> scale bench smoke run (target/BENCH_scale.smoke.json)"
cargo run --release -p bench --bin bench_scale -- --smoke --out target/BENCH_scale.smoke.json
if [ ! -s target/BENCH_scale.smoke.json ]; then
    echo "ci.sh: target/BENCH_scale.smoke.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_scale -- --check target/BENCH_scale.smoke.json
cargo run --release -p bench --bin bench_scale -- --check BENCH_scale.json
if ! grep -q '"mode": "full"' BENCH_scale.json; then
    echo "ci.sh: committed BENCH_scale.json is not a full-mode run" >&2
    exit 1
fi

echo "==> obs gate: build + test with --features obs"
cargo build -q --workspace --features obs
cargo test -q --workspace --features obs

echo "==> obs gate: bench_scale --smoke --obs-out target/obs.smoke.json"
cargo run -q --release -p bench --features bench/obs --bin bench_scale -- \
    --smoke --out target/BENCH_scale.obs-smoke.json --obs-out target/obs.smoke.json
if [ ! -s target/obs.smoke.json ]; then
    echo "ci.sh: target/obs.smoke.json missing or empty" >&2
    exit 1
fi
for key in '"schema": "obs_scale/v1"' '"schema": "obs/v1"' '"coverage_pct"' \
    'stage.mark' 'stage.mint' 'stage.seal' 'keytree.mark_batch' 'uka.build'; do
    if ! grep -q "$key" target/obs.smoke.json; then
        echo "ci.sh: obs snapshot is missing $key" >&2
        exit 1
    fi
done
# Balanced-brace structural parse, same check the --check flags apply.
python3 - <<'EOF'
import json
with open("target/obs.smoke.json") as f:
    snap = json.load(f)
assert snap["schema"] == "obs_scale/v1", snap["schema"]
assert snap["obs"]["enabled"] is True
names = {s["name"] for s in snap["obs"]["spans"]}
for expected in ("stage.mark", "stage.mint", "stage.seal", "keytree.mark_batch", "uka.build"):
    assert expected in names, f"missing span {expected}: {sorted(names)}"
EOF

echo "==> ci.sh: all gates passed"
