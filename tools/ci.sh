#!/usr/bin/env bash
# The full local gate: formatting, lints, the xcheck static-analysis pass,
# and the test suite with the deep invariant sanitizer live. Everything
# runs offline against the vendored in-tree dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xcheck"
cargo run -p xcheck

echo "==> cargo test --workspace --features sanitize"
cargo test --workspace -q --features sanitize

# Smoke runs write under target/ so they never clobber the committed
# full-mode baselines; the committed JSONs are validated read-only.
mkdir -p target

echo "==> bench smoke run (target/BENCH_rekey.smoke.json)"
cargo run --release -p bench --bin bench_rekey -- --smoke --out target/BENCH_rekey.smoke.json
if [ ! -s target/BENCH_rekey.smoke.json ]; then
    echo "ci.sh: target/BENCH_rekey.smoke.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_rekey -- --check target/BENCH_rekey.smoke.json
cargo run --release -p bench --bin bench_rekey -- --check BENCH_rekey.json
if ! grep -q '"mode": "full"' BENCH_rekey.json; then
    echo "ci.sh: committed BENCH_rekey.json is not a full-mode run" >&2
    exit 1
fi

echo "==> figure engine smoke run (target/BENCH_figures.smoke.json)"
cargo run --release -p bench --bin bench_figures -- --smoke --out target/BENCH_figures.smoke.json
if [ ! -s target/BENCH_figures.smoke.json ]; then
    echo "ci.sh: target/BENCH_figures.smoke.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_figures -- --check target/BENCH_figures.smoke.json
cargo run --release -p bench --bin bench_figures -- --check BENCH_figures.json
if ! grep -q '"mode": "full"' BENCH_figures.json; then
    echo "ci.sh: committed BENCH_figures.json is not a full-mode run" >&2
    exit 1
fi

echo "==> scale bench smoke run (target/BENCH_scale.smoke.json)"
cargo run --release -p bench --bin bench_scale -- --smoke --out target/BENCH_scale.smoke.json
if [ ! -s target/BENCH_scale.smoke.json ]; then
    echo "ci.sh: target/BENCH_scale.smoke.json missing or empty" >&2
    exit 1
fi
cargo run --release -p bench --bin bench_scale -- --check target/BENCH_scale.smoke.json
cargo run --release -p bench --bin bench_scale -- --check BENCH_scale.json
if ! grep -q '"mode": "full"' BENCH_scale.json; then
    echo "ci.sh: committed BENCH_scale.json is not a full-mode run" >&2
    exit 1
fi

echo "==> ci.sh: all gates passed"
