//! Umbrella crate for the group-rekeying reproduction.
//!
//! Re-exports every subsystem so the workspace-level integration tests and
//! examples have a single import root. See the individual crates for the
//! real documentation:
//!
//! * [`grouprekey`] — the end-to-end system (start here),
//! * [`keytree`] — LKH key trees and the marking algorithm,
//! * [`rekeymsg`] — wire formats, UKA, blocks, block-ID estimation,
//! * [`rekeyproto`] — server/user protocol state machines,
//! * [`rse`] / [`gf256`] — Reed–Solomon erasure coding substrate,
//! * [`wirecrypto`] — cipher/MAC/sealing/registration substrate,
//! * [`netsim`] — the lossy-multicast network simulator.

#![forbid(unsafe_code)]

pub use gf256;
pub use grouprekey;
pub use keytree;
pub use netsim;
pub use rekeymsg;
pub use rekeyproto;
pub use rse;
pub use wirecrypto;
