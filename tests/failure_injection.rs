//! Failure injection and pathological-configuration coverage: extreme
//! loss, degenerate block sizes, tiny packets, tiny groups, join storms,
//! corrupted wire bytes.

use grouprekey::driver::Group;
use grouprekey::experiment::{run_experiment, ExperimentParams};
use grouprekey::ServerOptions;
use keytree::Batch;
use netsim::NetworkConfig;
use rekeymsg::{Layout, Packet};
use rekeyproto::ServerConfig;

#[test]
fn fifty_percent_loss_everywhere_still_delivers() {
    let cfg = NetworkConfig {
        n_users: 32,
        alpha: 1.0,
        p_high: 0.50,
        p_source: 0.10,
        seed: 3,
        ..NetworkConfig::default()
    };
    let mut group = Group::new(32, ServerOptions::default(), cfg);
    group.max_rounds = 200;
    for i in 0..3 {
        group.rekey(Batch::new(vec![], vec![i * 3]));
        assert!(group.all_agents_synchronized(), "message {i}");
    }
}

#[test]
fn block_size_one_works_end_to_end() {
    let options = ServerOptions {
        protocol: ServerConfig {
            block_size: 1,
            ..ServerConfig::default()
        },
        ..ServerOptions::default()
    };
    let mut group = Group::new(
        64,
        options,
        NetworkConfig {
            n_users: 64,
            seed: 5,
            ..NetworkConfig::default()
        },
    );
    let leaves: Vec<u32> = (0..16).map(|i| i * 4).collect();
    group.rekey(Batch::new(vec![], leaves));
    assert!(group.all_agents_synchronized());
}

#[test]
fn large_block_size_with_duplicates_works() {
    // k = 50 with a small message: the single block is mostly duplicates.
    let options = ServerOptions {
        protocol: ServerConfig {
            block_size: 50,
            ..ServerConfig::default()
        },
        ..ServerOptions::default()
    };
    let mut group = Group::new(
        64,
        options,
        NetworkConfig {
            n_users: 64,
            alpha: 1.0,
            p_high: 0.25,
            seed: 7,
            ..NetworkConfig::default()
        },
    );
    let leaves: Vec<u32> = (0..16).map(|i| i * 4).collect();
    let report = group.rekey(Batch::new(vec![], leaves));
    assert!(report.blocks >= 1);
    assert!(group.all_agents_synchronized());
}

#[test]
fn tiny_packet_layout() {
    // A six-encryption packet (vs the default 46) still holds one whole
    // user path but forces UKA into many packets and blocks.
    let layout = Layout::new(3 + 6 + 22 * 6);
    let options = ServerOptions {
        protocol: ServerConfig {
            layout,
            block_size: 4,
            ..ServerConfig::default()
        },
        ..ServerOptions::default()
    };
    let mut group = Group::new(
        32,
        options,
        NetworkConfig {
            n_users: 32,
            seed: 9,
            ..NetworkConfig::default()
        },
    );
    let report = group.rekey(Batch::new(vec![], vec![0, 9, 18, 27]));
    // ~20+ encryptions at 6 per packet: several packets instead of the
    // single packet the default 46-slot layout would produce.
    assert!(
        report.enc_packets >= 4,
        "small packets should multiply: {}",
        report.enc_packets
    );
    assert!(group.all_agents_synchronized());
}

#[test]
fn two_member_group_churn() {
    let mut group = Group::new(
        2,
        ServerOptions::default(),
        NetworkConfig {
            n_users: 8,
            seed: 11,
            ..NetworkConfig::default()
        },
    );
    let j = group.mint_join(50);
    group.rekey(Batch::new(vec![j], vec![0]));
    assert_eq!(group.agents.len(), 2);
    assert!(group.all_agents_synchronized());
    // Shrink to one, grow again.
    group.rekey(Batch::new(vec![], vec![1]));
    assert_eq!(group.agents.len(), 1);
    let j2 = group.mint_join(51);
    let j3 = group.mint_join(52);
    group.rekey(Batch::new(vec![j2, j3], vec![]));
    assert_eq!(group.agents.len(), 3);
    assert!(group.all_agents_synchronized());
}

#[test]
fn join_storm_quadruples_group() {
    let mut group = Group::new(
        16,
        ServerOptions::default(),
        NetworkConfig {
            n_users: 128,
            seed: 13,
            ..NetworkConfig::default()
        },
    );
    let joins: Vec<_> = (0..48).map(|i| group.mint_join(100 + i)).collect();
    group.rekey(Batch::new(joins, vec![]));
    assert_eq!(group.agents.len(), 64);
    assert!(group.all_agents_synchronized());
}

#[test]
fn corrupted_wire_bytes_are_rejected_not_misparsed() {
    // Flip bytes in valid packets; parsing either fails cleanly or yields
    // a packet whose sealed payloads fail authentication — never a panic.
    let layout = Layout::DEFAULT;
    let mut kg = wirecrypto::KeyGen::from_seed(1);
    let mut tree = keytree::KeyTree::balanced(64, 4, &mut kg);
    let outcome = tree.process_batch(&Batch::new(vec![], vec![1, 2, 3]), &mut kg);
    let built = rekeymsg::UkaAssignment::build(&tree, &outcome, 1, &layout).unwrap();
    let bytes = built.packets[0].emit(&layout);

    for i in 0..bytes.len().min(64) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x5A;
        // Anything else is reinterpreted as another type or rejected.
        if let Ok(Packet::Enc(pkt)) = Packet::parse(&corrupt, &layout) {
            // Sealed entries must not silently unseal to wrong keys.
            for (id, sealed) in &pkt.entries {
                let child = *id as u32;
                if let Some(kek) = tree.key_of(child) {
                    // Either it fails, or (for untouched entries) it
                    // yields exactly the true parent key.
                    if let Ok(key) = sealed.unseal(&kek, rekeymsg::seal_context(1, child)) {
                        let parent = keytree::ident::parent(child, 4).unwrap();
                        assert_eq!(Some(key), tree.key_of(parent));
                    }
                }
            }
        }
    }
}

#[test]
fn truncated_packets_never_panic() {
    let layout = Layout::DEFAULT;
    let mut kg = wirecrypto::KeyGen::from_seed(2);
    let mut tree = keytree::KeyTree::balanced(16, 4, &mut kg);
    let outcome = tree.process_batch(&Batch::new(vec![], vec![0]), &mut kg);
    let built = rekeymsg::UkaAssignment::build(&tree, &outcome, 1, &layout).unwrap();
    let bytes = built.packets[0].emit(&layout);
    for len in 0..bytes.len() {
        let _ = Packet::parse(&bytes[..len], &layout); // must not panic
    }
}

#[test]
fn parity_exhaustion_falls_back_to_unicast() {
    // k = 2 leaves only 253 parities per block; brutal loss with
    // multicast-only disabled off... here max rounds high so the server
    // would keep multicasting, but the parity space is finite: the session
    // must fall back to unicast instead of erroring.
    let params = ExperimentParams {
        protocol: ServerConfig {
            block_size: 2,
            initial_rho: 1.0,
            adapt_rho: false,
            max_multicast_rounds: usize::MAX,
            ..ServerConfig::default()
        },
        net: NetworkConfig {
            alpha: 1.0,
            p_high: 0.49,
            p_source: 0.20,
            ..NetworkConfig::default()
        },
        messages: 2,
        ..ExperimentParams::default()
    }
    .with_n(256);
    let reports = run_experiment(params);
    for r in &reports {
        assert_eq!(r.unserved_users, 0, "reliability must hold");
    }
}

#[test]
fn alternating_feast_and_famine_batches() {
    let mut group = Group::new(
        32,
        ServerOptions::default(),
        NetworkConfig {
            n_users: 128,
            seed: 17,
            ..NetworkConfig::default()
        },
    );
    let mut next = 32u32;
    for round in 0..6 {
        if round % 2 == 0 {
            // Feast: many joins.
            let joins: Vec<_> = (0..20)
                .map(|_| {
                    let j = group.mint_join(next);
                    next += 1;
                    j
                })
                .collect();
            group.rekey(Batch::new(joins, vec![]));
        } else {
            // Famine: many leaves.
            let mut members: Vec<u32> = group.agents.keys().copied().collect();
            members.sort_unstable();
            let leaves: Vec<u32> = members.into_iter().step_by(3).take(15).collect();
            group.rekey(Batch::new(vec![], leaves));
        }
        assert!(group.all_agents_synchronized(), "round {round}");
    }
}
