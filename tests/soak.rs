//! Long-haul soak: one persistent group run byte-faithfully through 100
//! rekey intervals of mixed churn, with every invariant checked every
//! interval. This is the drift test — bugs that only manifest after holes
//! accumulate, nodes split repeatedly, or message IDs wrap the 6-bit wire
//! field show up here.

use grouprekey::driver::Group;
use grouprekey::frontend::{IntervalCollector, JoinRequest, LeaveRequest};
use grouprekey::ServerOptions;
use netsim::NetworkConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wirecrypto::SymKey;

#[test]
fn hundred_intervals_of_churn() {
    let mut group = Group::new(
        48,
        ServerOptions::default(),
        NetworkConfig {
            n_users: 160,
            alpha: 0.25,
            seed: 404,
            ..NetworkConfig::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(2026);
    let mut collector = IntervalCollector::new();
    let mut next_member = 48u32;
    let credential = SymKey::from_bytes(*b"soak-credential!");
    let mut group_keys_seen = vec![group.group_key().unwrap()];

    for interval in 0..100u64 {
        // Random churn submitted through the authenticated front end.
        let n_leaves = rng.gen_range(0..6usize);
        let n_joins = rng.gen_range(0..6usize);

        let mut members: Vec<u32> = group.agents.keys().copied().collect();
        members.sort_unstable();
        for _ in 0..n_leaves.min(members.len().saturating_sub(1)) {
            let idx = rng.gen_range(0..members.len());
            let m = members.swap_remove(idx);
            let key = group.agents[&m]
                .key_of(group.agents[&m].node_id())
                .expect("individual key");
            let req = LeaveRequest::sign(m, collector.interval(), &key);
            collector
                .submit_leave(req, |mm| {
                    group.agents.get(&mm).and_then(|a| a.key_of(a.node_id()))
                })
                .unwrap_or_else(|e| panic!("interval {interval}: leave {m}: {e}"));
        }
        for _ in 0..n_joins {
            let m = next_member;
            next_member += 1;
            // Full registration handshake for every joiner.
            let (_, key) = group
                .register_join(m, credential, 0x1000 + m as u64)
                .expect("registration succeeds");
            let req = JoinRequest::sign(m, collector.interval(), &key);
            collector
                .submit_join(req, key, group.agents.contains_key(&m))
                .unwrap_or_else(|e| panic!("interval {interval}: join {m}: {e}"));
        }

        let batch = collector.close_interval();
        let changed = !batch.is_empty();
        let before_key = group.group_key();
        group.rekey(batch);

        // Invariants, every interval.
        group
            .server
            .tree()
            .check_invariants()
            .unwrap_or_else(|e| panic!("interval {interval}: {e}"));
        assert!(
            group.all_agents_synchronized(),
            "interval {interval}: agent desynchronized"
        );
        let gk = group.group_key().unwrap();
        if changed {
            assert_ne!(Some(gk), before_key, "interval {interval}: key unchanged");
            assert!(
                !group_keys_seen.contains(&gk),
                "interval {interval}: group key reuse"
            );
            group_keys_seen.push(gk);
        } else {
            assert_eq!(Some(gk), before_key);
        }
        assert!(!group.agents.is_empty(), "group must never empty out here");
    }

    // 100 intervals means the 6-bit wire message ID wrapped at least once.
    assert!(group.server.msg_seq() >= 100);
}

mod scenario_soak {
    //! Long-horizon scenario soak: every adversarial trace family run for
    //! thousands of batches on a small group, with compaction on, the tree
    //! invariants checked every interval, and the whole rekey stream
    //! replayed under different worker counts and adversarial schedules —
    //! any divergence or invariant break fails by digest mismatch or
    //! panic. Under `--features sanitize` every one of those batches also
    //! passes the secrecy/delivery oracles and the Theorem 4.2 / explicit-
    //! relocation re-derivations inside `KeyServer::rekey`.

    use grouprekey::scenario::{ScenarioConfig, ScenarioEngine, ScenarioKind};
    use grouprekey::ServerOptions;
    use keytree::CompactionPolicy;

    const INTERVALS: usize = 2000;
    const WORKERS: [usize; 2] = [1, 4];
    const SCHED_SEEDS: [u64; 2] = [0x50AC, 0xCA05];

    fn config(kind: ScenarioKind) -> ScenarioConfig {
        ScenarioConfig {
            kind,
            seed: 0x50A6_0000 ^ kind.name().len() as u64,
            initial_users: 96,
            intervals: INTERVALS,
            options: ServerOptions {
                compaction: CompactionPolicy::DEFAULT_ON,
                ..ServerOptions::default()
            },
        }
    }

    /// Steps the whole trace, checking tree invariants as it goes, and
    /// returns the run digest.
    fn soak(kind: ScenarioKind) -> u64 {
        let mut engine = ScenarioEngine::new(config(kind));
        for interval in 0..INTERVALS {
            let stats = engine.step();
            engine
                .server()
                .tree()
                .check_invariants()
                .unwrap_or_else(|e| panic!("{} interval {interval}: {e}", kind.name()));
            assert_eq!(
                stats.users,
                engine.server().tree().user_count(),
                "{} interval {interval}: stats drifted from the tree",
                kind.name()
            );
        }
        engine.digest()
    }

    /// One test per trace family so failures name the trace and the
    /// suite parallelizes across them.
    macro_rules! soak_test {
        ($name:ident, $kind:expr) => {
            #[test]
            fn $name() {
                let baseline = soak($kind);
                // Bit-identity gates: same digest at every worker count
                // and under adversarial schedule perturbation.
                for workers in WORKERS {
                    let replay = taskpool::with_workers(workers, || soak($kind));
                    assert_eq!(
                        replay,
                        baseline,
                        "{} diverged at {workers} workers",
                        $kind.name()
                    );
                    for seed in SCHED_SEEDS {
                        let perturbed = taskpool::with_workers(workers, || {
                            taskpool::with_schedule(seed, || soak($kind))
                        });
                        assert_eq!(
                            perturbed,
                            baseline,
                            "{} diverged at {workers} workers, schedule seed {seed:#x}",
                            $kind.name()
                        );
                    }
                }
            }
        };
    }

    soak_test!(flash_crowd_thousands_of_batches, ScenarioKind::FlashCrowd);
    soak_test!(diurnal_thousands_of_batches, ScenarioKind::Diurnal);
    soak_test!(
        mass_departure_thousands_of_batches,
        ScenarioKind::MassDeparture
    );
    soak_test!(oscillation_thousands_of_batches, ScenarioKind::Oscillation);
    soak_test!(storm_thousands_of_batches, ScenarioKind::Storm);
}
