//! Long-haul soak: one persistent group run byte-faithfully through 100
//! rekey intervals of mixed churn, with every invariant checked every
//! interval. This is the drift test — bugs that only manifest after holes
//! accumulate, nodes split repeatedly, or message IDs wrap the 6-bit wire
//! field show up here.

use grouprekey::driver::Group;
use grouprekey::frontend::{IntervalCollector, JoinRequest, LeaveRequest};
use grouprekey::ServerOptions;
use netsim::NetworkConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wirecrypto::SymKey;

#[test]
fn hundred_intervals_of_churn() {
    let mut group = Group::new(
        48,
        ServerOptions::default(),
        NetworkConfig {
            n_users: 160,
            alpha: 0.25,
            seed: 404,
            ..NetworkConfig::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(2026);
    let mut collector = IntervalCollector::new();
    let mut next_member = 48u32;
    let credential = SymKey::from_bytes(*b"soak-credential!");
    let mut group_keys_seen = vec![group.group_key().unwrap()];

    for interval in 0..100u64 {
        // Random churn submitted through the authenticated front end.
        let n_leaves = rng.gen_range(0..6usize);
        let n_joins = rng.gen_range(0..6usize);

        let mut members: Vec<u32> = group.agents.keys().copied().collect();
        members.sort_unstable();
        for _ in 0..n_leaves.min(members.len().saturating_sub(1)) {
            let idx = rng.gen_range(0..members.len());
            let m = members.swap_remove(idx);
            let key = group.agents[&m]
                .key_of(group.agents[&m].node_id())
                .expect("individual key");
            let req = LeaveRequest::sign(m, collector.interval(), &key);
            collector
                .submit_leave(req, |mm| {
                    group.agents.get(&mm).and_then(|a| a.key_of(a.node_id()))
                })
                .unwrap_or_else(|e| panic!("interval {interval}: leave {m}: {e}"));
        }
        for _ in 0..n_joins {
            let m = next_member;
            next_member += 1;
            // Full registration handshake for every joiner.
            let (_, key) = group
                .register_join(m, credential, 0x1000 + m as u64)
                .expect("registration succeeds");
            let req = JoinRequest::sign(m, collector.interval(), &key);
            collector
                .submit_join(req, key, group.agents.contains_key(&m))
                .unwrap_or_else(|e| panic!("interval {interval}: join {m}: {e}"));
        }

        let batch = collector.close_interval();
        let changed = !batch.is_empty();
        let before_key = group.group_key();
        group.rekey(batch);

        // Invariants, every interval.
        group
            .server
            .tree()
            .check_invariants()
            .unwrap_or_else(|e| panic!("interval {interval}: {e}"));
        assert!(
            group.all_agents_synchronized(),
            "interval {interval}: agent desynchronized"
        );
        let gk = group.group_key().unwrap();
        if changed {
            assert_ne!(Some(gk), before_key, "interval {interval}: key unchanged");
            assert!(
                !group_keys_seen.contains(&gk),
                "interval {interval}: group key reuse"
            );
            group_keys_seen.push(gk);
        } else {
            assert_eq!(Some(gk), before_key);
        }
        assert!(!group.agents.is_empty(), "group must never empty out here");
    }

    // 100 intervals means the 6-bit wire message ID wrapped at least once.
    assert!(group.server.msg_seq() >= 100);
}
