//! Property-based end-to-end churn: arbitrary join/leave sequences over
//! lossy networks must always leave every agent holding the group key,
//! with keys never reused and departed members locked out.

use grouprekey::driver::Group;
use grouprekey::ServerOptions;
use keytree::Batch;
use netsim::NetworkConfig;
use proptest::prelude::*;
use rekeyproto::ServerConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_churn_end_to_end(
        seed in any::<u64>(),
        n0 in 8u32..48,
        k in prop::sample::select(vec![1usize, 3, 5, 10]),
        alpha in prop::sample::select(vec![0.0, 0.3, 1.0]),
        rounds in proptest::collection::vec((0usize..6, 0usize..6), 1..5),
    ) {
        let options = ServerOptions {
            protocol: ServerConfig {
                block_size: k,
                ..ServerConfig::default()
            },
            ..ServerOptions::default()
        };
        let mut group = Group::new(
            n0,
            options,
            NetworkConfig {
                n_users: n0 as usize + 64,
                alpha,
                p_high: 0.25,
                seed,
                ..NetworkConfig::default()
            },
        );
        let mut next_member = n0;
        let mut state = seed;
        let mut keys_seen = vec![group.group_key().unwrap()];

        for (j, l) in rounds {
            let mut members: Vec<u32> = group.agents.keys().copied().collect();
            members.sort_unstable();
            // Keep at least one member.
            let l = l.min(members.len().saturating_sub(1));
            let mut leaves = Vec::new();
            for _ in 0..l {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let idx = (state >> 33) as usize % members.len();
                leaves.push(members.swap_remove(idx));
            }
            let joins: Vec<_> = (0..j)
                .map(|_| {
                    let m = next_member;
                    next_member += 1;
                    group.mint_join(m)
                })
                .collect();
            if joins.is_empty() && leaves.is_empty() {
                continue;
            }
            let departed_agents: Vec<_> = leaves
                .iter()
                .map(|m| group.agents[m].clone())
                .collect();
            group.rekey(Batch::new(joins, leaves));

            prop_assert!(group.all_agents_synchronized());
            let gk = group.group_key().unwrap();
            prop_assert!(!keys_seen.contains(&gk), "group key reuse");
            for old in &departed_agents {
                prop_assert_ne!(old.group_key(), Some(gk), "departed member kept up");
            }
            keys_seen.push(gk);
            prop_assert_eq!(group.server.tree().check_invariants(), Ok(()));
        }
    }
}
