//! The high-throughput transport simulator (`grouprekey::sim`, share-count
//! users) and the byte-faithful path (`rekeyproto::UserSession` over wire
//! bytes) must produce *identical* delivery dynamics when driven by the
//! same network randomness: same per-user success rounds, same NACK
//! counts, same server decisions. This is the justification for using the
//! fast model in the figure experiments.

use std::collections::HashMap;

use keytree::{Batch, KeyTree, NodeId};
use netsim::{Network, NetworkConfig};
use rekeymsg::{build_usr_packet, Layout, Packet, UkaAssignment};
use rekeyproto::{RoundDecision, ServerConfig, ServerController, UserSession};
use wirecrypto::KeyGen;

use grouprekey::sim::{run_message_transport, SimConfig, SimUser};

struct Scenario {
    tree: KeyTree,
    outcome: keytree::MarkOutcome,
    assignment: UkaAssignment,
    proto: ServerConfig,
    net_cfg: NetworkConfig,
}

fn scenario(seed: u64, alpha: f64, p_high: f64, max_rounds: usize) -> Scenario {
    let n = 128u32;
    let mut kg = KeyGen::from_seed(seed);
    let mut tree = KeyTree::balanced(n, 4, &mut kg);
    let leaves: Vec<u32> = (0..32u32).map(|i| i * 4).collect();
    let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
    let assignment = UkaAssignment::build(&tree, &outcome, 1, &Layout::DEFAULT).unwrap();
    let proto = ServerConfig {
        block_size: 5,
        initial_rho: 1.0,
        adapt_rho: false,
        max_multicast_rounds: max_rounds,
        ..ServerConfig::default()
    };
    let net_cfg = NetworkConfig {
        n_users: n as usize,
        alpha,
        p_high,
        seed: seed ^ 0xBEEF,
        ..NetworkConfig::default()
    };
    Scenario {
        tree,
        outcome,
        assignment,
        proto,
        net_cfg,
    }
}

/// Byte-faithful replica of `run_message_transport`'s loop, with real
/// packets crossing the network as bytes.
fn run_byte_faithful(sc: &Scenario) -> (HashMap<NodeId, usize>, usize, f64) {
    let layout = Layout::DEFAULT;
    let controller = ServerController::new(sc.proto);
    let mut session = controller.begin_message(sc.assignment.packets.clone(), 100);
    let mut net = Network::new(sc.net_cfg);
    let mut clock = 0.0f64;
    let send_interval = sc.net_cfg.send_interval_ms;
    let rtt = 2.0 * sc.net_cfg.one_way_delay_ms;

    // Users in sorted member order, identically to the sim run.
    let mut members = sc.tree.member_ids();
    members.sort_unstable();
    let nodes: Vec<NodeId> = members
        .iter()
        .map(|&m| sc.tree.node_of_member(m).unwrap())
        .collect();
    let mut users: Vec<UserSession> = nodes
        .iter()
        .map(|&node| UserSession::new(node, 4, sc.proto.block_size, layout))
        .collect();
    let member_by_node: HashMap<NodeId, usize> =
        nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    let mut round = 1usize;
    let mut action = RoundDecision::Multicast(session.start());
    loop {
        match &action {
            RoundDecision::Multicast(schedule) => {
                for pkt in schedule {
                    clock += send_interval;
                    let bytes = pkt.emit(&layout);
                    let listeners: Vec<usize> = (0..users.len())
                        .filter(|&i| !users[i].is_satisfied())
                        .collect();
                    if listeners.is_empty() {
                        break;
                    }
                    for (slot, ok) in net.multicast_to(clock, &listeners) {
                        if ok {
                            let parsed = Packet::parse(&bytes, &layout).unwrap();
                            users[slot].receive(&parsed);
                        }
                    }
                }
            }
            RoundDecision::Unicast(wave) => {
                for node in &wave.targets {
                    let slot = member_by_node[node];
                    let usr = build_usr_packet(&sc.tree, &sc.outcome, members[slot], 1).unwrap();
                    let bytes = Packet::Usr(usr).emit(&layout);
                    for _ in 0..wave.duplicates {
                        clock += send_interval;
                        if net.unicast(clock, slot) {
                            let parsed = Packet::parse(&bytes, &layout).unwrap();
                            users[slot].receive(&parsed);
                        }
                    }
                }
            }
            RoundDecision::Done => {}
        }
        clock += rtt;
        for (i, u) in users.iter_mut().enumerate() {
            if let Some(nack) = u.end_of_round() {
                session.accept_nack(nodes[i], &nack);
            }
        }
        action = session.end_of_round();
        if matches!(action, RoundDecision::Done) {
            break;
        }
        round += 1;
        assert!(round < 64, "byte-faithful run did not converge");
    }

    let per_user: HashMap<NodeId, usize> = nodes
        .iter()
        .zip(&users)
        .map(|(&n, u)| (n, u.rounds_to_success().expect("all served")))
        .collect();
    (
        per_user,
        session.first_round_nack_count(),
        session.bandwidth_overhead(),
    )
}

fn run_fast_model(sc: &Scenario) -> (HashMap<NodeId, usize>, usize, f64) {
    let controller = ServerController::new(sc.proto);
    let mut session = controller.begin_message(sc.assignment.packets.clone(), 100);
    let mut net = Network::new(sc.net_cfg);
    let mut clock = 0.0f64;
    let k = sc.proto.block_size;

    let mut members = sc.tree.member_ids();
    members.sort_unstable();
    let mut users: Vec<SimUser> = members
        .iter()
        .enumerate()
        .map(|(idx, &m)| {
            let uid = sc.tree.node_of_member(m).unwrap();
            let tb = sc.assignment.packet_of_user(uid).map(|pi| (pi / k) as u8);
            SimUser::new(idx, uid, k, 4, tb)
        })
        .collect();

    let stats = run_message_transport(
        &mut net,
        &mut clock,
        &mut session,
        &mut users,
        &SimConfig::default(),
    );
    assert_eq!(stats.unserved, 0);

    let per_user: HashMap<NodeId, usize> = users
        .iter()
        .map(|u| (u.node_id, u.satisfied_round().expect("served")))
        .collect();
    (
        per_user,
        session.first_round_nack_count(),
        session.bandwidth_overhead(),
    )
}

fn assert_agreement(seed: u64, alpha: f64, p_high: f64, max_rounds: usize) {
    let sc = scenario(seed, alpha, p_high, max_rounds);
    let (bytes_rounds, bytes_nacks, bytes_bw) = run_byte_faithful(&sc);
    let (fast_rounds, fast_nacks, fast_bw) = run_fast_model(&sc);

    assert_eq!(bytes_nacks, fast_nacks, "round-1 NACK counts differ");
    assert!(
        (bytes_bw - fast_bw).abs() < 1e-12,
        "bandwidth overhead differs: bytes {bytes_bw} vs fast {fast_bw}"
    );
    assert_eq!(
        bytes_rounds.len(),
        fast_rounds.len(),
        "user population differs"
    );
    for (node, r) in &bytes_rounds {
        assert_eq!(
            fast_rounds.get(node),
            Some(r),
            "node {node}: byte-faithful round {r} vs fast {:?}",
            fast_rounds.get(node)
        );
    }
}

#[test]
fn agreement_low_loss() {
    assert_agreement(11, 0.2, 0.20, usize::MAX);
}

#[test]
fn agreement_heavy_loss_multicast_only() {
    assert_agreement(12, 1.0, 0.30, usize::MAX);
}

#[test]
fn agreement_with_unicast_tail() {
    assert_agreement(13, 1.0, 0.30, 1);
}

#[test]
fn agreement_two_round_switch() {
    assert_agreement(14, 0.4, 0.25, 2);
}

#[test]
fn agreement_many_seeds() {
    for seed in 20..30 {
        assert_agreement(seed, 0.2, 0.20, 2);
    }
}
