//! Shape assertions from the paper's evaluation, at reduced scale so they
//! run in test time. The bench binaries regenerate the full figures; these
//! tests pin the qualitative claims so regressions are caught by
//! `cargo test`.

use grouprekey::experiment::{
    encryption_cost_batch, encryption_cost_individual, run_experiment, workload_stats,
    ExperimentParams, ExperimentRun,
};
use netsim::NetworkConfig;
use rekeymsg::Layout;
use rekeyproto::ServerConfig;

fn base(n: u32, messages: usize) -> ExperimentParams {
    ExperimentParams {
        messages,
        net: NetworkConfig {
            ..NetworkConfig::default()
        },
        ..ExperimentParams::default()
    }
    .with_n(n)
}

/// Figure 6: ENC packets grow roughly linearly with N for L = N/4.
#[test]
fn fig6_enc_packets_linear_in_n() {
    let p512 = workload_stats(512, 4, 0, 128, 3, 1, &Layout::DEFAULT);
    let p1024 = workload_stats(1024, 4, 0, 256, 3, 1, &Layout::DEFAULT);
    let p2048 = workload_stats(2048, 4, 0, 512, 3, 1, &Layout::DEFAULT);
    let r1 = p1024.enc_packets / p512.enc_packets;
    let r2 = p2048.enc_packets / p1024.enc_packets;
    assert!((1.6..2.4).contains(&r1), "512->1024 ratio {r1}");
    assert!((1.6..2.4).contains(&r2), "1024->2048 ratio {r2}");
}

/// Figure 6 (middle): for fixed L, message size grows with J; for fixed J,
/// it peaks around L = N/d.
#[test]
fn fig6_join_leave_shape() {
    let n = 1024u32;
    let l_fixed = 256usize;
    let j_small = workload_stats(n, 4, 64, l_fixed, 3, 2, &Layout::DEFAULT);
    let j_big = workload_stats(n, 4, 512, l_fixed, 3, 2, &Layout::DEFAULT);
    assert!(
        j_big.enc_packets > j_small.enc_packets,
        "more joins -> bigger message"
    );

    // L sweep at J = 0: peak near N/d, smaller at the extremes.
    let at = |l: usize| workload_stats(n, 4, 0, l, 4, 3, &Layout::DEFAULT).encryptions;
    let small = at(16);
    let peak = at((n / 4) as usize);
    let huge = at(n as usize - 8);
    assert!(peak > small, "peak {peak} vs small-L {small}");
    assert!(peak > huge, "peak {peak} vs huge-L {huge}");
}

/// Figure 7: duplication overhead is small (< (log_d N - 1) / 46 + eps)
/// and grows with log N.
#[test]
fn fig7_duplication_bounds() {
    let p256 = workload_stats(256, 4, 0, 64, 4, 4, &Layout::DEFAULT);
    let p4096 = workload_stats(4096, 4, 0, 1024, 2, 4, &Layout::DEFAULT);
    assert!(
        p256.duplication < (4.0 - 1.0) / 46.0 + 0.05,
        "{}",
        p256.duplication
    );
    assert!(
        p4096.duplication < (6.0 - 1.0) / 46.0 + 0.05,
        "{}",
        p4096.duplication
    );
    assert!(
        p4096.duplication > p256.duplication,
        "duplication should grow with log N: {} vs {}",
        p4096.duplication,
        p256.duplication
    );
}

/// Figure 9 (left): first-round NACKs fall sharply as rho rises.
#[test]
fn fig9_nacks_fall_with_rho() {
    let nacks_at = |rho: f64| -> f64 {
        let params = ExperimentParams {
            protocol: ServerConfig {
                initial_rho: rho,
                adapt_rho: false,
                ..ServerConfig::default()
            },
            messages: 4,
            ..base(1024, 4)
        }
        .multicast_only();
        let reports = run_experiment(params);
        reports.iter().map(|r| r.nacks_round1 as f64).sum::<f64>() / reports.len() as f64
    };
    let n1 = nacks_at(1.0);
    let n2 = nacks_at(2.0);
    assert!(
        n2 < n1 / 4.0,
        "rho 1 -> 2 should collapse NACKs: {n1} -> {n2}"
    );
}

/// Figure 10 (left): at rho = 1 with alpha = 20%, well over 90% of users
/// succeed within a single round.
#[test]
fn fig10_most_users_one_round() {
    let params = ExperimentParams {
        protocol: ServerConfig {
            initial_rho: 1.0,
            adapt_rho: false,
            ..ServerConfig::default()
        },
        messages: 4,
        ..base(1024, 4)
    }
    .multicast_only();
    let reports = run_experiment(params);
    for r in &reports {
        assert!(
            r.fraction_within(1) > 0.90,
            "only {:.4} within one round",
            r.fraction_within(1)
        );
    }
}

/// Figures 12–13: the adaptive controller pins first-round NACKs near the
/// target from either initial rho.
#[test]
fn fig12_13_nack_control_converges() {
    for initial_rho in [1.0, 2.0] {
        let params = ExperimentParams {
            protocol: ServerConfig {
                initial_rho,
                initial_num_nack: 20,
                adapt_num_nack: false,
                ..ServerConfig::default()
            },
            messages: 15,
            ..base(1024, 15)
        }
        .multicast_only();
        let reports = run_experiment(params);
        // After convergence (skip the first five), NACKs average near 20.
        let tail: Vec<usize> = reports[5..].iter().map(|r| r.nacks_round1).collect();
        let avg = tail.iter().sum::<usize>() as f64 / tail.len() as f64;
        assert!(
            (2.0..60.0).contains(&avg),
            "initial rho {initial_rho}: tail NACK average {avg} not controlled (tail {tail:?})"
        );
    }
}

/// Figure 17: block size has little effect on per-user delivery rounds.
#[test]
fn fig17_rounds_insensitive_to_k() {
    let rounds_at = |k: usize| -> f64 {
        let params = ExperimentParams {
            protocol: ServerConfig {
                block_size: k,
                ..ServerConfig::default()
            },
            messages: 5,
            ..base(1024, 5)
        }
        .multicast_only();
        let reports = run_experiment(params);
        reports.iter().map(|r| r.avg_user_rounds()).sum::<f64>() / reports.len() as f64
    };
    let r5 = rounds_at(5);
    let r30 = rounds_at(30);
    assert!((r5 - r30).abs() < 0.2, "k=5: {r5}, k=30: {r30}");
    assert!(r5 < 1.3 && r30 < 1.3, "per-user rounds should be near 1");
}

/// SIGCOMM axis: batch rekeying costs far fewer encryptions than
/// processing requests individually.
#[test]
fn sigcomm_batch_savings() {
    let batch = encryption_cost_batch(512, 4, 0, 128, 2, 5);
    let individual = encryption_cost_individual(512, 4, 0, 128, 2, 5);
    assert!(
        batch < individual / 2.0,
        "batch {batch} vs individual {individual}"
    );
}

/// SIGCOMM axis: rekey workload is sparse — a user needs only O(log_d N)
/// encryptions out of a message that grows with N.
#[test]
fn sigcomm_sparseness() {
    let p = workload_stats(1024, 4, 0, 256, 3, 6, &Layout::DEFAULT);
    assert!(p.per_user_need <= 6.0, "per-user need {}", p.per_user_need);
    assert!(
        p.encryptions / p.per_user_need > 50.0,
        "message should dwarf per-user needs"
    );
}

/// Unserved users never happen: reliability is eventual even at alpha = 1
/// with 40% loss.
#[test]
fn reliability_under_extreme_loss() {
    let params = ExperimentParams {
        net: NetworkConfig {
            alpha: 1.0,
            p_high: 0.40,
            ..NetworkConfig::default()
        },
        messages: 3,
        ..base(512, 3)
    };
    let reports = run_experiment(params);
    for r in &reports {
        assert_eq!(r.unserved_users, 0);
    }
}

/// Deadline accounting: with a 1-round deadline some users miss; with a
/// generous deadline nobody does.
#[test]
fn deadline_accounting() {
    let mut strict = base(512, 3);
    strict.sim.deadline_rounds = 1;
    strict.protocol.initial_rho = 1.0;
    strict.protocol.adapt_rho = false;
    let strict_reports = run_experiment(strict.multicast_only());

    let mut loose = base(512, 3);
    loose.sim.deadline_rounds = 50;
    let loose_reports = run_experiment(loose.multicast_only());

    assert!(
        strict_reports.iter().any(|r| r.missed_deadline > 0),
        "1-round deadline at rho=1 should be missed by someone"
    );
    assert!(loose_reports.iter().all(|r| r.missed_deadline == 0));
}

/// The controller state is observable and persists across messages.
#[test]
fn controller_state_persists() {
    let params = ExperimentParams {
        protocol: ServerConfig {
            initial_rho: 1.0,
            initial_num_nack: 5,
            ..ServerConfig::default()
        },
        messages: 6,
        ..base(512, 6)
    }
    .multicast_only();
    let mut run = ExperimentRun::new(params);
    let mut rhos = Vec::new();
    for _ in 0..6 {
        let r = run.step();
        rhos.push(r.rho);
    }
    // rho was adapted at least once across the sequence.
    assert!(
        rhos.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9),
        "rho never moved: {rhos:?}"
    );
}
