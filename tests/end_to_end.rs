//! Full-stack integration: server, wire bytes, lossy network, FEC, user
//! agents with real cryptography.

use grouprekey::driver::Group;
use grouprekey::ServerOptions;
use keytree::Batch;
use netsim::NetworkConfig;
use rekeyproto::ServerConfig;
use wirecrypto::registration::{RegistrarSession, UserRegistration};
use wirecrypto::{KeyGen, SymKey};

fn net(n: usize, seed: u64) -> NetworkConfig {
    NetworkConfig {
        n_users: n,
        seed,
        ..NetworkConfig::default()
    }
}

#[test]
fn churn_sequence_keeps_group_synchronized() {
    let mut group = Group::new(64, ServerOptions::default(), net(160, 5));
    let mut next = 64u32;
    let mut keys_seen = vec![group.group_key().unwrap()];

    for round in 0u32..10 {
        let members: Vec<u32> = {
            let mut m: Vec<u32> = group.agents.keys().copied().collect();
            m.sort_unstable();
            m
        };
        let leaves: Vec<u32> = members
            .iter()
            .copied()
            .filter(|m| (m + round) % 7 == 0)
            .take(5)
            .collect();
        let joins: Vec<(u32, SymKey)> = (0..(round % 4))
            .map(|_| {
                let j = group.mint_join(next);
                next += 1;
                j
            })
            .collect();
        if joins.is_empty() && leaves.is_empty() {
            continue;
        }
        group.rekey(Batch::new(joins, leaves));
        let gk = group.group_key().unwrap();
        assert!(
            !keys_seen.contains(&gk),
            "round {round}: group key repeated"
        );
        keys_seen.push(gk);
        assert!(group.all_agents_synchronized(), "round {round}");
    }
}

#[test]
fn forward_secrecy_departed_member_locked_out() {
    let mut group = Group::new(32, ServerOptions::default(), net(32, 9));
    let victim_agent = group.agents[&7].clone();
    group.rekey(Batch::new(vec![], vec![7]));

    // The departed member's frozen agent must not know the new group key,
    // and no encryption in any subsequent message can be opened with its
    // old keys (its individual key no longer encrypts anything).
    let new_gk = group.group_key().unwrap();
    assert_ne!(victim_agent.group_key(), Some(new_gk));
}

#[test]
fn backward_secrecy_joiner_cannot_read_past() {
    let mut group = Group::new(32, ServerOptions::default(), net(64, 11));
    let old_gk = group.group_key().unwrap();
    let join = group.mint_join(500);
    group.rekey(Batch::new(vec![join], vec![]));
    let newcomer = &group.agents[&500];
    assert_eq!(newcomer.group_key(), group.group_key());
    assert_ne!(newcomer.group_key(), Some(old_gk), "backward secrecy");
}

#[test]
fn high_loss_network_still_delivers() {
    let cfg = NetworkConfig {
        n_users: 48,
        alpha: 1.0,
        p_high: 0.35,
        p_source: 0.05,
        seed: 13,
        ..NetworkConfig::default()
    };
    let mut group = Group::new(48, ServerOptions::default(), cfg);
    for i in 0..5 {
        group.rekey(Batch::new(vec![], vec![i * 7]));
        assert!(group.all_agents_synchronized(), "message {i}");
    }
}

#[test]
fn single_multicast_round_forces_unicast_tail() {
    let options = ServerOptions {
        protocol: ServerConfig {
            max_multicast_rounds: 1,
            initial_rho: 1.0,
            ..ServerConfig::default()
        },
        ..ServerOptions::default()
    };
    let cfg = NetworkConfig {
        n_users: 192,
        alpha: 1.0,
        p_high: 0.30,
        seed: 21,
        ..NetworkConfig::default()
    };
    let mut group = Group::new(192, options, cfg);
    let mut unicast_used = false;
    // Scattered leavers make the rekey subtree wide (several ENC packets),
    // so some user plausibly loses its block in the one multicast round.
    let mut join_id = 1000u32;
    for i in 0..4u32 {
        let mut alive: Vec<u32> = group.agents.keys().copied().collect();
        alive.sort_unstable();
        let leaves: Vec<u32> = alive
            .iter()
            .copied()
            .skip(i as usize)
            .step_by(4)
            .take(40)
            .collect();
        let joins: Vec<_> = leaves
            .iter()
            .map(|_| {
                join_id += 1;
                group.mint_join(join_id)
            })
            .collect();
        let report = group.rekey(Batch::new(joins, leaves));
        unicast_used |= report.usr_packets > 0;
        assert!(group.all_agents_synchronized());
    }
    assert!(
        unicast_used,
        "30% loss with one multicast round must exercise unicast"
    );
}

#[test]
fn mass_join_with_splits_end_to_end() {
    // 16-user full tree + 40 joins forces repeated node splitting; moved
    // users must rederive their IDs from maxKID and still get their keys.
    let mut group = Group::new(16, ServerOptions::default(), net(80, 17));
    let joins: Vec<(u32, SymKey)> = (0..40).map(|i| group.mint_join(100 + i)).collect();
    group.rekey(Batch::new(joins, vec![]));
    assert_eq!(group.agents.len(), 56);
    assert!(group.all_agents_synchronized());
}

#[test]
fn group_shrinks_to_one_member() {
    let mut group = Group::new(8, ServerOptions::default(), net(8, 23));
    group.rekey(Batch::new(vec![], (1..8).collect()));
    assert_eq!(group.agents.len(), 1);
    assert!(group.all_agents_synchronized());
}

#[test]
fn registration_handshake_feeds_admission() {
    // Run the real challenge-response registration, then admit the user
    // with the key it negotiated and verify it can follow a rekey.
    let credential = SymKey::from_bytes(*b"shared-credentia");
    let mut keygen = KeyGen::from_seed(99);

    let (mut user_side, join_req) = UserRegistration::start(credential, 1);
    let (registrar, challenge) = RegistrarSession::challenge(credential, join_req, 2);
    let proof = user_side.prove(challenge);
    let (grant, server_copy) = registrar.grant(proof, 4242, &mut keygen).unwrap();
    let (reg_id, user_copy) = user_side.accept(grant).unwrap();
    assert_eq!(reg_id, 4242);
    assert_eq!(user_copy, server_copy);

    let mut group = Group::new(16, ServerOptions::default(), net(32, 29));
    group.rekey(Batch::new(vec![(4242, user_copy)], vec![]));
    assert!(group.agents.contains_key(&4242));
    assert!(group.all_agents_synchronized());
}

#[test]
fn empty_batch_changes_nothing() {
    let mut group = Group::new(16, ServerOptions::default(), net(16, 31));
    let gk = group.group_key();
    let report = group.rekey(Batch::default());
    assert_eq!(report.enc_packets, 0);
    assert_eq!(group.group_key(), gk);
    assert!(group.all_agents_synchronized());
}
