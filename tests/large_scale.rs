//! Large-scale smoke: the paper's biggest configuration (N = 16384) runs
//! end to end in the fast simulator, serves every user, and the message
//! size scales as the paper's Figure 6 (right) predicts.

use grouprekey::experiment::{run_experiment, workload_stats, ExperimentParams};
use rekeymsg::Layout;
use rekeyproto::ServerConfig;

#[test]
fn sixteen_k_users_one_message() {
    let params = ExperimentParams {
        protocol: ServerConfig {
            initial_rho: 1.4,
            adapt_rho: false,
            ..ServerConfig::default()
        },
        messages: 1,
        ..ExperimentParams::default()
    }
    .with_n(16384)
    .multicast_only();
    let reports = run_experiment(params);
    let r = &reports[0];
    assert_eq!(r.unserved_users, 0);
    // ~300+ ENC packets (4x the N = 4096 figure).
    assert!(
        (250..400).contains(&r.enc_packets),
        "ENC packets {}",
        r.enc_packets
    );
    assert!(r.fraction_within(1) > 0.95);
}

#[test]
fn message_size_scales_linearly_to_sixteen_k() {
    let small = workload_stats(4096, 4, 0, 1024, 2, 3, &Layout::DEFAULT);
    let large = workload_stats(16384, 4, 0, 4096, 2, 3, &Layout::DEFAULT);
    let ratio = large.enc_packets / small.enc_packets;
    assert!(
        (3.5..4.6).contains(&ratio),
        "4x users should mean ~4x packets, got {ratio}"
    );
    // Per-user needs grow only with log N: +1 level from 4096 to 16384.
    assert!(large.per_user_need - small.per_user_need < 1.5);
}

#[test]
fn wire_id_range_covers_sixteen_k() {
    // At N = 16384, d = 4 the deepest node IDs approach 21845 — still
    // within the 16-bit wire fields. Verify an actual assignment emits.
    let mut kg = wirecrypto::KeyGen::from_seed(1);
    let mut tree = keytree::KeyTree::balanced(16384, 4, &mut kg);
    let leaves: Vec<u32> = (0..64u32).map(|i| i * 256).collect();
    let outcome = tree.process_batch(&keytree::Batch::new(vec![], leaves), &mut kg);
    let built = rekeymsg::UkaAssignment::build(&tree, &outcome, 1, &Layout::DEFAULT).unwrap();
    for pkt in &built.packets {
        let bytes = pkt.emit(&Layout::DEFAULT);
        assert_eq!(bytes.len(), 1027);
    }
}
